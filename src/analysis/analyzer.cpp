#include "analysis/analyzer.hpp"

#include <algorithm>
#include <iomanip>
#include <optional>
#include <sstream>

#include "isa/instruction.hpp"

namespace rse::analysis {
namespace {

std::string hex(Addr addr) {
  std::ostringstream os;
  os << "0x" << std::hex << std::setw(8) << std::setfill('0') << addr;
  return os.str();
}

bool in_text(const isa::Program& p, Addr addr) {
  return addr >= p.text_base && addr < p.text_end() && (addr & 3u) == 0;
}

isa::Instr instr_at(const isa::Program& p, Addr pc) {
  return isa::decode(p.text[(pc - p.text_base) / 4]);
}

struct Emitter {
  const isa::Program& program;
  std::vector<Diagnostic>& out;

  void operator()(Severity severity, DiagCode code, Addr addr, std::string message) const {
    Diagnostic d;
    d.severity = severity;
    d.code = code;
    d.addr = addr;
    d.symbol = symbolize(program, addr);
    d.message = std::move(message);
    out.push_back(std::move(d));
  }
};

void check_direct_targets(const isa::Program& p, const ControlFlowGraph& cfg,
                          const Emitter& emit) {
  for (const BasicBlock& block : cfg.blocks) {
    const Addr pc = block.terminator_pc();
    const isa::Instr term = instr_at(p, pc);
    std::optional<Addr> target;
    switch (term.op_class()) {
      case isa::OpClass::kBranch:
        target = pc + 4 + (static_cast<Word>(term.imm) << 2);
        break;
      case isa::OpClass::kJump:
        if (term.op == isa::Op::kJ || term.op == isa::Op::kJal) target = term.target << 2;
        break;
      default:
        break;
    }
    if (target && !in_text(p, *target)) {
      emit(Severity::kError, DiagCode::kBranchTargetOutsideText, pc,
           isa::disassemble(term) + ": target " + hex(*target) + " lies outside text [" +
               hex(p.text_base) + ", " + hex(p.text_end()) + ")");
    }
  }
}

void check_fall_off_end(const isa::Program& p, const ControlFlowGraph& cfg,
                        const Emitter& emit) {
  for (const BasicBlock& block : cfg.blocks) {
    if (!block.reachable || block.end != cfg.text_end) continue;
    if (block.exit != BlockExit::kFallThrough && block.exit != BlockExit::kBranch) continue;
    const isa::Instr term = instr_at(p, block.terminator_pc());
    emit(Severity::kError, DiagCode::kFallOffTextEnd, block.terminator_pc(),
         "execution can fall past text_end() " + hex(cfg.text_end) + " (last instruction: " +
             isa::disassemble(term) + ")");
  }
}

void check_encodings(const isa::Program& p, const ControlFlowGraph& cfg, const Emitter& emit) {
  for (std::size_t i = 0; i < p.text.size(); ++i) {
    const Addr pc = p.text_base + static_cast<Addr>(i * 4);
    if (isa::decode(p.text[i]).op != isa::Op::kInvalid) continue;
    const BasicBlock* block = cfg.block_at(pc);
    const bool reachable = block != nullptr && block->reachable;
    emit(reachable ? Severity::kError : Severity::kWarning, DiagCode::kInvalidEncoding, pc,
         "word " + hex(p.text[i]) + " does not decode to any instruction" +
             (reachable ? " (reachable: traps at execution)" : " (unreachable)"));
  }
}

void check_stores(const isa::Program& p, const ControlFlowGraph& cfg, const Emitter& emit) {
  // Per-block constant propagation over the assembler's materialization
  // idioms (lui/ori, addi rs=r0): enough to resolve the `sw rt, label`
  // pseudo-form without pretending to be a value analysis.
  for (const BasicBlock& block : cfg.blocks) {
    std::optional<u32> known[isa::kNumRegs];
    known[0] = 0;
    for (Addr pc = block.start; pc < block.end; pc += 4) {
      const isa::Instr in = instr_at(p, pc);
      if (in.op_class() == isa::OpClass::kStore) {
        if (known[in.rs]) {
          const Addr addr = *known[in.rs] + static_cast<u32>(in.imm);
          if (addr >= p.text_base && addr < p.text_end()) {
            emit(Severity::kError, DiagCode::kStoreToText, pc,
                 isa::disassemble(in) + ": resolved store address " + hex(addr) +
                     " lies inside the text segment");
          }
        }
        continue;
      }
      const auto dest = in.dest_reg();
      if (!dest) continue;
      std::optional<u32> value;
      if (in.op == isa::Op::kLui) {
        value = static_cast<u32>(in.imm) << 16;
      } else if (in.op == isa::Op::kOri && known[in.rs]) {
        value = *known[in.rs] | (static_cast<u32>(in.imm) & 0xFFFFu);
      } else if (in.op == isa::Op::kAddi && known[in.rs]) {
        value = *known[in.rs] + static_cast<u32>(in.imm);
      }
      known[*dest] = value;
      known[0] = 0;
    }
  }
}

/// chk_op values each module actually decodes; nullopt = the module accepts
/// any op (the ICM treats every CHK addressed to it as "check the next
/// instruction" regardless of the op field).
std::optional<std::vector<u8>> valid_chk_ops(isa::ModuleId module) {
  switch (module) {
    case isa::ModuleId::kFramework: return std::vector<u8>{1, 2};
    case isa::ModuleId::kIcm: return std::nullopt;
    case isa::ModuleId::kMlr: return std::vector<u8>{3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    case isa::ModuleId::kDdt: return std::vector<u8>{3};
    case isa::ModuleId::kAhbm: return std::vector<u8>{3, 4, 5};
    case isa::ModuleId::kCfc: return std::vector<u8>{};  // no CHK ops defined
  }
  return std::vector<u8>{};
}

void check_chk(const isa::Program& p, const Emitter& emit) {
  for (std::size_t i = 0; i < p.text.size(); ++i) {
    const isa::Instr in = isa::decode(p.text[i]);
    if (in.op != isa::Op::kChk) continue;
    const Addr pc = p.text_base + static_cast<Addr>(i * 4);
    const auto module_field = static_cast<unsigned>(in.chk_module);
    if (module_field >= isa::kNumModuleIds) {
      emit(Severity::kError, DiagCode::kChkUnknownModule, pc,
           isa::disassemble(in) + ": module# " + std::to_string(module_field) +
               " names no RSE module (valid: 0.." + std::to_string(isa::kNumModuleIds - 1) +
               ")");
      continue;
    }
    if (in.chk_module == isa::ModuleId::kFramework &&
        (in.chk_op == 1 /*enable*/ || in.chk_op == 2 /*disable*/)) {
      const unsigned target = in.chk_imm & 0x7u;
      if (target >= isa::kNumModuleIds) {
        emit(Severity::kError, DiagCode::kChkBadConfig, pc,
             isa::disassemble(in) + ": imm12 selects module " + std::to_string(target) +
                 ", which does not exist — the enable/disable is silently dropped");
      }
    }
    const auto ops = valid_chk_ops(in.chk_module);
    if (ops && std::find(ops->begin(), ops->end(), in.chk_op) == ops->end()) {
      emit(Severity::kWarning, DiagCode::kChkUnknownOp, pc,
           isa::disassemble(in) + ": op" + std::to_string(in.chk_op) +
               " is not decoded by the addressed module");
    }
    if (in.chk_module == isa::ModuleId::kIcm) {
      const bool last_word = i + 1 >= p.text.size();
      const bool next_is_chk = !last_word && isa::decode(p.text[i + 1]).op == isa::Op::kChk;
      if (last_word || next_is_chk) {
        emit(Severity::kWarning, DiagCode::kChkChecksNothing, pc,
             last_word
                 ? "ICM CHECK is the last text word: there is no next instruction to check"
                 : "ICM CHECK is followed by another CHECK: its coverage shifts to the next "
                   "non-CHK dispatch");
      }
    }
  }
}

void check_unreachable(const ControlFlowGraph& cfg, const Emitter& emit) {
  for (const BasicBlock& block : cfg.blocks) {
    if (block.reachable) continue;
    emit(Severity::kWarning, DiagCode::kUnreachableBlock, block.start,
         "block [" + hex(block.start) + ", " + hex(block.end) +
             ") is unreachable from the entry point and every address-taken root");
  }
}

void check_protected_coverage(const isa::Program& p, const AnalysisOptions& options,
                              const Emitter& emit) {
  for (const ProtectedRegion& region : options.protected_regions) {
    for (Addr pc = region.lo & ~Addr{3}; pc < region.hi; pc += 4) {
      if (!in_text(p, pc)) continue;
      const isa::Instr in = instr_at(p, pc);
      if (!in.is_control()) continue;
      const bool covered =
          pc > p.text_base && [&] {
            const isa::Instr prev = instr_at(p, pc - 4);
            return prev.op == isa::Op::kChk && prev.chk_module == isa::ModuleId::kIcm;
          }();
      if (!covered) {
        emit(Severity::kWarning, DiagCode::kMissingChkCoverage, pc,
             isa::disassemble(in) + ": control instruction in protected region '" +
                 region.name + "' lacks a preceding ICM CHECK");
      }
    }
  }
}

// The loader leaves this much scratch below the initial stack pointer
// (stack_top = (stack_base - 64) & ~15), so sp-relative stores at small
// positive offsets are legal; anything beyond is a frame overflow.
constexpr i64 kStackSlackBytes = 64;

void check_footprint(const isa::Program& p, const PageFootprint& fp, const Emitter& emit) {
  const bool has_data = !p.data.empty();
  for (const AccessSite& site : fp.sites) {
    if (!site.is_store) continue;
    if (site.precision == AccessPrecision::kUnknown) {
      emit(Severity::kWarning, DiagCode::kUnresolvedAddress, site.pc,
           "store address cannot be bounded statically; the site is excluded "
           "from the DDT footprint check");
      continue;
    }
    if (site.base == AddressBase::kAbsolute) {
      const bool hits_data = has_data && site.hi >= static_cast<i64>(p.data_base) &&
                             site.lo < static_cast<i64>(p.data_end());
      const bool hits_text = site.hi >= static_cast<i64>(p.text_base) &&
                             site.lo < static_cast<i64>(p.text_end());
      if (!hits_data && !hits_text) {  // store-to-text reports the text case
        emit(Severity::kError, DiagCode::kStoreOutsideFootprint, site.pc,
             "resolved store range [" + hex(static_cast<Addr>(site.lo)) + ", " +
                 hex(static_cast<Addr>(site.hi)) + "] lies outside every mapped segment");
      }
    } else if (site.base == AddressBase::kStack && site.lo > kStackSlackBytes - 1) {
      emit(Severity::kError, DiagCode::kStoreOutsideFootprint, site.pc,
           "sp-relative store at offset " + std::to_string(site.lo) +
               " lands above the thread's initial stack pointer");
    }
  }
}

}  // namespace

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const char* to_string(DiagCode code) {
  switch (code) {
    case DiagCode::kBranchTargetOutsideText: return "branch-target-outside-text";
    case DiagCode::kFallOffTextEnd: return "fall-off-text-end";
    case DiagCode::kInvalidEncoding: return "invalid-encoding";
    case DiagCode::kStoreToText: return "store-to-text";
    case DiagCode::kChkUnknownModule: return "chk-unknown-module";
    case DiagCode::kChkBadConfig: return "chk-bad-config";
    case DiagCode::kChkUnknownOp: return "chk-unknown-op";
    case DiagCode::kChkChecksNothing: return "chk-checks-nothing";
    case DiagCode::kUnreachableBlock: return "unreachable-block";
    case DiagCode::kMissingChkCoverage: return "missing-chk-coverage";
    case DiagCode::kStoreOutsideFootprint: return "store-outside-footprint";
    case DiagCode::kUnresolvedAddress: return "unresolved-address";
  }
  return "?";
}

bool AnalysisResult::has_errors() const { return count(Severity::kError) > 0; }

u32 AnalysisResult::count(Severity severity) const {
  u32 n = 0;
  for (const Diagnostic& d : diagnostics) n += d.severity == severity ? 1 : 0;
  return n;
}

std::string symbolize(const isa::Program& program, Addr addr) {
  const std::string* best_name = nullptr;
  Addr best_addr = 0;
  for (const auto& [name, value] : program.symbols) {
    if (value > addr || value < program.text_base || value >= program.text_end()) continue;
    if (best_name == nullptr || value > best_addr) {
      best_name = &name;
      best_addr = value;
    }
  }
  if (best_name == nullptr) return {};
  if (best_addr == addr) return *best_name;
  std::ostringstream os;
  os << *best_name << "+0x" << std::hex << (addr - best_addr);
  return os.str();
}

AnalysisResult analyze(const isa::Program& program, const AnalysisOptions& options) {
  AnalysisResult result;
  result.cfg = build_cfg(program);
  if (!options.resolve_indirect_address_taken) {
    for (BasicBlock& block : result.cfg.blocks) {
      if (block.exit == BlockExit::kIndirect) {
        block.indirect_resolved = false;
        block.successors.clear();
      }
    }
  }
  result.indirect = indirect_targets(result.cfg);
  for (const BasicBlock& block : result.cfg.blocks) {
    if ((block.exit == BlockExit::kReturn || block.exit == BlockExit::kIndirect) &&
        !block.indirect_resolved) {
      ++result.unresolved_indirects;
    }
  }

  FootprintOptions fp_options;
  fp_options.interprocedural = options.interprocedural_footprint;
  fp_options.context_depth = options.context_depth;
  fp_options.field_sensitive = options.field_sensitive;
  fp_options.sp_depth = options.field_sp_depth;
  result.footprint = compute_footprint(program, result.cfg, fp_options);

  const Emitter emit{program, result.diagnostics};
  check_direct_targets(program, result.cfg, emit);
  check_fall_off_end(program, result.cfg, emit);
  check_encodings(program, result.cfg, emit);
  check_stores(program, result.cfg, emit);
  check_chk(program, emit);
  check_unreachable(result.cfg, emit);
  check_protected_coverage(program, options, emit);
  check_footprint(program, result.footprint, emit);

  std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) { return a.addr < b.addr; });
  return result;
}

std::string format_diagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << to_string(d.severity) << '[' << to_string(d.code) << "] " << hex(d.addr);
  if (!d.symbol.empty()) os << " (" << d.symbol << ")";
  os << ": " << d.message;
  return os.str();
}

std::string to_json(const isa::Program& program, const AnalysisResult& result) {
  (void)program;
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  std::ostringstream os;
  os << "{\n  \"blocks\": " << result.cfg.blocks.size()
     << ",\n  \"reachable_blocks\": " << result.cfg.reachable_blocks()
     << ",\n  \"call_edges\": " << result.cfg.calls.size()
     << ",\n  \"address_taken\": " << result.cfg.address_taken.size()
     << ",\n  \"resolved_indirects\": " << result.indirect.size()
     << ",\n  \"unresolved_indirects\": " << result.unresolved_indirects
     << ",\n  \"errors\": " << result.count(Severity::kError)
     << ",\n  \"warnings\": " << result.count(Severity::kWarning);
  const PageFootprint& fp = result.footprint;
  os << ",\n  \"footprint\": {\"mode\": \""
     << (fp.interprocedural ? "interprocedural" : "flat")
     << "\", \"field_sensitive\": " << (fp.field_sensitive ? "true" : "false")
     << ", \"exact_sites\": " << fp.exact_sites
     << ", \"over_sites\": " << fp.over_sites
     << ", \"unknown_sites\": " << fp.unknown_sites << ", \"pages\": [";
  for (std::size_t i = 0; i < fp.pages.size(); ++i) {
    os << (i == 0 ? "" : ", ") << fp.pages[i];
  }
  os << "], \"store_pages\": [";
  for (std::size_t i = 0; i < fp.store_pages.size(); ++i) {
    os << (i == 0 ? "" : ", ") << fp.store_pages[i];
  }
  os << "]";
  if (fp.has_sp_range) {
    os << ", \"sp_lo\": " << fp.sp_lo << ", \"sp_hi\": " << fp.sp_hi;
  }
  if (fp.has_gp_range) {
    os << ", \"gp_lo\": " << fp.gp_lo << ", \"gp_hi\": " << fp.gp_hi;
  }
  if (fp.interprocedural) {
    u32 summarized = 0;
    for (const FunctionSummary& sum : fp.summaries) {
      if (sum.summarized) ++summarized;
    }
    os << ", \"functions\": " << fp.summaries.size()
       << ", \"summarized_functions\": " << summarized
       << ", \"context_depth\": " << fp.context_depth
       << ", \"contexts_cloned\": " << fp.contexts_cloned
       << ", \"context_fallbacks\": " << fp.context_fallbacks
       << ", \"spawn_contexts\": " << fp.spawn_contexts
       << ", \"sp_contexts\": " << fp.sp_contexts
       << ", \"context_sites\": " << fp.context_pages.size();
  }
  // Site-by-site export (field-sensitivity tooling): every resolved site
  // with its hull, residue stride (0 = dense), base and precision.
  auto base_name = [](AddressBase base) {
    switch (base) {
      case AddressBase::kAbsolute: return "abs";
      case AddressBase::kStack: return "sp";
      case AddressBase::kGlobal: return "gp";
      default: return "unknown";
    }
  };
  os << ", \"sites\": [";
  bool first_site = true;
  for (const AccessSite& site : fp.sites) {
    if (site.precision == AccessPrecision::kUnknown) continue;
    os << (first_site ? "" : ", ") << "{\"pc\": " << site.pc
       << ", \"store\": " << (site.is_store ? "true" : "false")
       << ", \"base\": \"" << base_name(site.base) << "\", \"precision\": \""
       << (site.precision == AccessPrecision::kExact ? "exact" : "over")
       << "\", \"lo\": " << site.lo << ", \"hi\": " << site.hi
       << ", \"stride\": " << site.stride << "}";
    first_site = false;
  }
  os << "], \"context_pages\": [";
  for (std::size_t i = 0; i < fp.context_pages.size(); ++i) {
    const PageFootprint::SitePages& site = fp.context_pages[i];
    os << (i == 0 ? "" : ", ") << "{\"pc\": " << site.pc
       << ", \"store\": " << (site.is_store ? "true" : "false")
       << ", \"pages\": [";
    for (std::size_t j = 0; j < site.pages.size(); ++j) {
      os << (j == 0 ? "" : ", ") << site.pages[j];
    }
    os << "]}";
  }
  os << "]";
  os << "}";
  os << ",\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    os << (i == 0 ? "" : ",") << "\n    {\"severity\": \"" << to_string(d.severity)
       << "\", \"code\": \"" << to_string(d.code) << "\", \"addr\": " << d.addr
       << ", \"symbol\": \"" << escape(d.symbol) << "\", \"message\": \"" << escape(d.message)
       << "\"}";
  }
  os << (result.diagnostics.empty() ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

}  // namespace rse::analysis
