// Static data-flow page-footprint signatures (the DDT analogue of the CFC
// successor-table handoff).  A per-block abstract interpreter over register
// values propagates constants (lui/ori materializations) and sp/gp-relative
// offsets along CFG edges and derives, for every reachable load/store site,
// the set of byte addresses it can touch.  Folded to 4 KB page granularity
// the result is a footprint signature the loader hands to the DDT
// (`DdtModule::set_footprint_table`): the DDT pre-reserves PST entries for
// the predicted store pages and raises a footprint-violation detection when
// a committed access at a statically resolved site lands outside the
// predicted page set.
//
// Abstract domain (documented in docs/analysis.md):
//   * a register value is Unknown, Abs[lo,hi] (a signed-i32 constant range),
//     Sp[lo,hi] (offset from the executing thread's initial stack pointer)
//     or Gp[lo,hi] (offset from the initial global pointer); in
//     field-sensitive mode every non-Unknown value additionally carries a
//     residue stride (the value set is {lo, lo+s, ..., hi}), introduced by
//     shifts/multiplies and loop-carried induction, joined by gcd, and
//     folded to exact page residues instead of the dense hull;
//   * roots (the entry point and every address-taken block) seed all
//     registers Unknown except r0 = 0, sp = Sp[0,0], gp = Gp[0,0];
//   * call edges enter the callee with ra bound to the return site; the
//     call's fall-through applies the callee's FunctionSummary in the
//     default interprocedural mode (preserved registers flow through,
//     summary pages/envelopes join in rebased against the caller's sp), or
//     clobbers the full caller-saved set (at, v0/v1, a0-a3, t0-t9, ra) in
//     flat mode, assuming sp/gp/fp/s0-s7 preserved (ABI assumption);
//   * summaries are computed bottom-up over the call graph with a bounded
//     fixpoint for recursion; indirect calls join over the address-taken
//     candidate set;
//   * conditional-branch edges refine operand ranges (loop bounds such as
//     `blt t0, t2` with a constant t2 become finite index ranges);
//   * joins widen after a per-block visit budget: straight to Unknown in
//     flat mode, one rung at a time up the program's own materialized-
//     constant ladder at interprocedural join points (with a strike-count
//     backstop), so the fixpoint always terminates.
//
// Soundness contract (pinned by tests/analysis/footprint_property_test.cpp):
// every page a program dynamically touches from a *resolved* site is inside
// the static footprint; unresolved sites are excluded from checking rather
// than guessed at.
#pragma once

#include <vector>

#include "analysis/cfg.hpp"
#include "common/types.hpp"
#include "isa/program.hpp"

namespace rse::analysis {

/// How precisely a memory-access site's address set was resolved.
enum class AccessPrecision : u8 {
  kExact,    // a single address (possibly spanning 2 pages for a word)
  kOver,     // a finite over-approximate range
  kUnknown,  // not statically resolvable; excluded from DDT checking
};

/// Which base the resolved range is relative to.
enum class AddressBase : u8 {
  kAbsolute,  // [lo, hi] are byte addresses
  kStack,     // [lo, hi] are offsets from the thread's initial sp
  kGlobal,    // [lo, hi] are offsets from the initial gp
  kUnknown,
};

/// One reachable load/store instruction and its derived address range.
struct AccessSite {
  Addr pc = 0;
  bool is_store = false;
  AddressBase base = AddressBase::kUnknown;
  AccessPrecision precision = AccessPrecision::kUnknown;
  i64 lo = 0;  // first byte the access can touch (inclusive)
  i64 hi = 0;  // last byte the access can touch (inclusive)
  /// Residue grid of the base addresses inside [lo, hi] (field-sensitive
  /// mode): 0 = dense or singleton (every byte of the hull is possible),
  /// >= 2 = the base address only takes values lo + k*stride.  The page
  /// fold uses it to skip pages the strided walk can never touch.
  i64 stride = 0;
};

/// Per-function fold of the absolute sites (function = nearest preceding
/// entry candidate, as in the CFG's return-site inference).
struct FunctionFootprint {
  Addr entry = 0;
  std::vector<u32> pages;        // absolute pages touched, sorted
  std::vector<u32> store_pages;  // subset with at least one store, sorted
  u32 exact_sites = 0;
  u32 over_sites = 0;
  u32 unknown_sites = 0;
};

/// Parametric per-function summary (interprocedural mode).  Everything is
/// expressed against the function's *own* entry sp/gp, so one summary serves
/// every call site: instantiation rebases the envelopes by the caller's
/// sp/gp state at the call, and joins over the address-taken candidate set
/// for indirect calls.
struct FunctionSummary {
  Addr entry = 0;
  /// False: the function contains a construct the summary cannot cover
  /// (control leaves the function region other than by call or return, or
  /// the recursion fixpoint had to be force-widened) — callers fall back to
  /// the flat full-clobber call model and count one unknown contribution.
  bool summarized = false;
  /// Bit r set: a call to this function may leave register r holding a value
  /// different from the one at the call site (transitively through its
  /// callees).  A call's fall-through keeps every caller-saved register
  /// whose bit is clear; sp/gp bits are cleared only when every return path
  /// provably restores them by arithmetic.
  u32 clobbered_regs = 0;
  bool returns = false;          // a `jr $ra` is reachable from the entry
  std::vector<u32> pages;        // absolute pages, incl. instantiated callees
  std::vector<u32> store_pages;  // subset with at least one store
  bool has_sp_range = false;
  i64 sp_lo = 0;
  i64 sp_hi = 0;  // envelope of sp-relative accesses vs. the entry sp
  bool has_gp_range = false;
  i64 gp_lo = 0;
  i64 gp_hi = 0;  // envelope of gp-relative accesses vs. the entry gp
  u32 unknown_sites = 0;  // own + callee contributions the summary can't place
};

/// Knobs for `compute_footprint`.
struct FootprintOptions {
  /// Compute parametric per-function summaries bottom-up over the call
  /// graph and use them to refine call fall-through states (clobber masks,
  /// return-value ranges) instead of the flat full-caller-saved-clobber
  /// model.  Off = exact PR 3 behavior (kept reachable as `--flat-footprint`
  /// for differential measurement).
  bool interprocedural = true;
  /// Context-sensitive cloning depth for the program-wide pass (requires
  /// `interprocedural`; ignored in flat mode).  A direct call whose
  /// argument registers `$a0`-`$a3` carry a non-Unknown abstract tuple
  /// enters a per-(callee, argument-tuple) clone of the callee's block
  /// states instead of the joined context, up to this many nested clones
  /// per call path; deeper calls, indirect calls, and calls past the
  /// bounded clone cache fall back soundly to the joined context (whose
  /// fall-through still applies the joined summary).  Depth > 0 also
  /// enables spawn contexts: an address-taken thread entry whose only
  /// unexplained predecessors are thread-create syscalls is seeded with
  /// `$a0` bound to the join of the create sites' `$a1` arguments.
  /// 0 = exact PR 4 behavior, bit-for-bit (`--context-depth 0`).
  u32 context_depth = 1;
  /// Field-sensitive strided-interval domain: abstract values carry a
  /// residue stride (`base + k*stride`) introduced by shifts, multiplies
  /// and loop-carried induction, joins take the gcd of the strides and the
  /// base distance, and the page fold emits exact residue pages instead of
  /// the dense `[lo, hi]` hull.  Off = the pre-stride interval behavior,
  /// bit-for-bit (`--no-field-sensitive`).
  bool field_sensitive = true;
  /// Recursion-context depth for field-sensitive mode: a *recursive* call
  /// (its callee entry already on the ancestor context chain) clones a
  /// per-$sp-depth context for up to this many rungs, so each recursion
  /// level gets its own sp-relative envelope; deeper rungs fall back to
  /// the joined context (counted in context_fallbacks).  Requires
  /// `field_sensitive` and `context_depth > 0`.
  u32 sp_depth = 2;
};

/// Program-wide page-granularity footprint signature.
struct PageFootprint {
  std::vector<AccessSite> sites;             // every reachable site, by pc
  std::vector<FunctionFootprint> functions;  // sorted by entry
  std::vector<u32> pages;        // union of absolute pages, sorted
  std::vector<u32> store_pages;  // subset with at least one store, sorted
  // Envelope of sp-relative accesses (byte offsets from the thread's
  // initial sp; the loader resolves them against each thread's stack top).
  bool has_sp_range = false;
  i64 sp_lo = 0;
  i64 sp_hi = 0;
  // Envelope of gp-relative accesses (offsets from the initial gp).
  bool has_gp_range = false;
  i64 gp_lo = 0;
  i64 gp_hi = 0;
  u32 exact_sites = 0;
  u32 over_sites = 0;
  u32 unknown_sites = 0;

  /// Which call model produced this footprint (FootprintOptions mirror).
  bool interprocedural = false;
  /// Per-function parametric summaries, sorted by entry.  Empty in flat
  /// mode.  Informational for callers (rse_lint dumps them); the global
  /// site pass above is what the DDT's soundness rests on.
  std::vector<FunctionSummary> summaries;

  /// Effective context-sensitivity depth (0 when disabled or in flat mode).
  u32 context_depth = 0;
  /// Per-(callee, argument-tuple) clones the bounded cache admitted.
  u32 contexts_cloned = 0;
  /// Call entries that fell back to the joined context (depth budget,
  /// cache saturation, or indirect call).
  u32 context_fallbacks = 0;
  /// Address-taken thread entries whose `$a0` was bound from create sites.
  u32 spawn_contexts = 0;
  /// Whether the strided-interval domain was active (FootprintOptions
  /// mirror; recorded so consumers can tell the fold discipline apart).
  bool field_sensitive = false;
  /// Recursive calls that entered a per-$sp-depth clone (field mode).
  u32 sp_contexts = 0;

  /// Per-pc refined page sets for sites the context-sensitive pass
  /// resolved more tightly than the single-range hull in `sites` can
  /// express: the union over contexts of each context's page range
  /// (absolute pages; `$gp`-relative ranges fold in at the initial gp = 0,
  /// matching the loader convention).  A pc listed here is checked by the
  /// DDT against its own page set plus the runtime-registered stack pages
  /// (stack-relative context components fold into the sp envelope above).
  /// Sorted by pc.  Context-insensitive runs only emit entries here in
  /// field-sensitive mode, where a strided site's residue pages can be
  /// strictly tighter than the hull even with a single context.
  struct SitePages {
    Addr pc = 0;
    bool is_store = false;
    std::vector<u32> pages;  // sorted
  };
  std::vector<SitePages> context_pages;

  /// PCs of all resolved (non-Unknown) sites, sorted — the DDT checks
  /// exactly these and leaves unresolved sites alone (sound under partial
  /// resolution).
  std::vector<Addr> checked_pcs() const;

  bool empty() const { return sites.empty(); }
};

/// Runs the abstract interpreter over an already-recovered CFG.
PageFootprint compute_footprint(const isa::Program& program,
                                const ControlFlowGraph& cfg,
                                const FootprintOptions& options = {});

}  // namespace rse::analysis
