// Static data-flow page-footprint signatures (the DDT analogue of the CFC
// successor-table handoff).  A per-block abstract interpreter over register
// values propagates constants (lui/ori materializations) and sp/gp-relative
// offsets along CFG edges and derives, for every reachable load/store site,
// the set of byte addresses it can touch.  Folded to 4 KB page granularity
// the result is a footprint signature the loader hands to the DDT
// (`DdtModule::set_footprint_table`): the DDT pre-reserves PST entries for
// the predicted store pages and raises a footprint-violation detection when
// a committed access at a statically resolved site lands outside the
// predicted page set.
//
// Abstract domain (documented in docs/analysis.md):
//   * a register value is Unknown, Abs[lo,hi] (a signed-i32 constant range),
//     Sp[lo,hi] (offset from the executing thread's initial stack pointer)
//     or Gp[lo,hi] (offset from the initial global pointer);
//   * roots (the entry point and every address-taken block) seed all
//     registers Unknown except r0 = 0, sp = Sp[0,0], gp = Gp[0,0];
//   * call edges enter the callee with ra bound to the return site; the
//     call's fall-through clobbers the caller-saved set (at, v0/v1, a0-a3,
//     t0-t9, ra) and assumes sp/gp/fp/s0-s7 are preserved (ABI assumption);
//   * conditional-branch edges refine operand ranges (loop bounds such as
//     `blt t0, t2` with a constant t2 become finite index ranges);
//   * joins widen to Unknown after a per-block visit budget, so the
//     fixpoint always terminates.
//
// Soundness contract (pinned by tests/analysis/footprint_property_test.cpp):
// every page a program dynamically touches from a *resolved* site is inside
// the static footprint; unresolved sites are excluded from checking rather
// than guessed at.
#pragma once

#include <vector>

#include "analysis/cfg.hpp"
#include "common/types.hpp"
#include "isa/program.hpp"

namespace rse::analysis {

/// How precisely a memory-access site's address set was resolved.
enum class AccessPrecision : u8 {
  kExact,    // a single address (possibly spanning 2 pages for a word)
  kOver,     // a finite over-approximate range
  kUnknown,  // not statically resolvable; excluded from DDT checking
};

/// Which base the resolved range is relative to.
enum class AddressBase : u8 {
  kAbsolute,  // [lo, hi] are byte addresses
  kStack,     // [lo, hi] are offsets from the thread's initial sp
  kGlobal,    // [lo, hi] are offsets from the initial gp
  kUnknown,
};

/// One reachable load/store instruction and its derived address range.
struct AccessSite {
  Addr pc = 0;
  bool is_store = false;
  AddressBase base = AddressBase::kUnknown;
  AccessPrecision precision = AccessPrecision::kUnknown;
  i64 lo = 0;  // first byte the access can touch (inclusive)
  i64 hi = 0;  // last byte the access can touch (inclusive)
};

/// Per-function fold of the absolute sites (function = nearest preceding
/// entry candidate, as in the CFG's return-site inference).
struct FunctionFootprint {
  Addr entry = 0;
  std::vector<u32> pages;        // absolute pages touched, sorted
  std::vector<u32> store_pages;  // subset with at least one store, sorted
  u32 exact_sites = 0;
  u32 over_sites = 0;
  u32 unknown_sites = 0;
};

/// Program-wide page-granularity footprint signature.
struct PageFootprint {
  std::vector<AccessSite> sites;             // every reachable site, by pc
  std::vector<FunctionFootprint> functions;  // sorted by entry
  std::vector<u32> pages;        // union of absolute pages, sorted
  std::vector<u32> store_pages;  // subset with at least one store, sorted
  // Envelope of sp-relative accesses (byte offsets from the thread's
  // initial sp; the loader resolves them against each thread's stack top).
  bool has_sp_range = false;
  i64 sp_lo = 0;
  i64 sp_hi = 0;
  // Envelope of gp-relative accesses (offsets from the initial gp).
  bool has_gp_range = false;
  i64 gp_lo = 0;
  i64 gp_hi = 0;
  u32 exact_sites = 0;
  u32 over_sites = 0;
  u32 unknown_sites = 0;

  /// PCs of all resolved (non-Unknown) sites, sorted — the DDT checks
  /// exactly these and leaves unresolved sites alone (sound under partial
  /// resolution).
  std::vector<Addr> checked_pcs() const;

  bool empty() const { return sites.empty(); }
};

/// Runs the abstract interpreter over an already-recovered CFG.
PageFootprint compute_footprint(const isa::Program& program,
                                const ControlFlowGraph& cfg);

}  // namespace rse::analysis
