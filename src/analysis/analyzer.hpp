// Static diagnostics over a recovered CFG (the lint behind rse_lint and the
// loader's optional pre-execution analysis).  Every finding is a
// severity-tagged Diagnostic with a symbolized address; `analyze()` bundles
// the CFG, the findings, and the CFC successor-table handoff in one result.
#pragma once

#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/footprint.hpp"
#include "isa/program.hpp"

namespace rse::analysis {

enum class Severity : u8 {
  kNote = 0,
  kWarning = 1,
  kError = 2,
};
const char* to_string(Severity severity);

/// Diagnostic catalogue (docs/analysis.md lists the rule behind each code).
enum class DiagCode : u8 {
  kBranchTargetOutsideText,  // error: direct branch/jump/call leaves text
  kFallOffTextEnd,           // error: execution can run past text_end()
  kInvalidEncoding,          // error when reachable, warning otherwise
  kStoreToText,              // error: resolvable store aimed at the text segment
  kChkUnknownModule,         // error: CHK module# has no module behind it
  kChkBadConfig,             // error: malformed imm12 (frame enable/disable of
                             //        a nonexistent module)
  kChkUnknownOp,             // warning: chk_op the addressed module ignores
  kChkChecksNothing,         // warning: ICM CHK not followed by a checkable
                             //          instruction (end of text / another CHK)
  kUnreachableBlock,         // warning: no path from any root reaches the block
  kMissingChkCoverage,       // warning: control instruction in a declared
                             //          protected region without an ICM CHK
  kStoreOutsideFootprint,    // error: resolved store outside every mapped
                             //        segment (wild pointer / bad frame math)
  kUnresolvedAddress,        // warning: store whose address the data-flow
                             //          pass cannot bound (excluded from the
                             //          DDT footprint check)
};
const char* to_string(DiagCode code);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  DiagCode code = DiagCode::kUnreachableBlock;
  Addr addr = 0;
  std::string symbol;   // nearest preceding text symbol + offset, or empty
  std::string message;  // human-readable detail (addresses pre-symbolized)
};

/// A text region the workload declares as requiring ICM CHECK coverage on
/// every control instruction (the Table 4 instrumentation contract).
struct ProtectedRegion {
  std::string name;
  Addr lo = 0;
  Addr hi = 0;  // exclusive
};

struct AnalysisOptions {
  std::vector<ProtectedRegion> protected_regions;
  /// Resolve non-return indirect jumps to the address-taken set (coarse
  /// CFI).  Off: such blocks always fall back to the CFC range check.
  bool resolve_indirect_address_taken = true;
  /// Compute per-function parametric summaries and refine call
  /// fall-throughs with them (see FootprintOptions::interprocedural).
  /// Off: the flat PR 3 call model (`--flat-footprint` on the tools).
  bool interprocedural_footprint = true;
  /// Context-sensitive cloning depth for the footprint pass (see
  /// FootprintOptions::context_depth; requires interprocedural_footprint).
  /// 0 = the context-insensitive PR 4 behavior, bit-for-bit
  /// (`--context-depth 0` on the tools).
  u32 context_depth = 1;
  /// Field-sensitive strided-interval footprint domain (see
  /// FootprintOptions::field_sensitive).  Off = the dense interval
  /// behavior, bit-for-bit (`--no-field-sensitive` on the tools).
  bool field_sensitive = true;
  /// Recursion-rung clone budget for field-sensitive mode (see
  /// FootprintOptions::sp_depth; `--sp-depth` on rse_lint).
  u32 field_sp_depth = 2;
};

struct AnalysisResult {
  ControlFlowGraph cfg;
  std::vector<Diagnostic> diagnostics;
  IndirectTargetTable indirect;  // resolved indirect jumps -> legal targets
  u32 unresolved_indirects = 0;  // blocks the CFC must range-check
  PageFootprint footprint;       // data-flow page signature (DDT handoff)

  bool has_errors() const;
  u32 count(Severity severity) const;
};

/// Run CFG recovery plus the full diagnostics pass.  Pure; never throws on
/// malformed programs (malformations become diagnostics).
AnalysisResult analyze(const isa::Program& program, const AnalysisOptions& options = {});

/// "main+0x10"-style label for a text address ('?' when no symbol precedes).
std::string symbolize(const isa::Program& program, Addr addr);

/// One human-readable line: "error[chk-unknown-module] 0x00400010 (main+0x10): ...".
std::string format_diagnostic(const Diagnostic& diagnostic);

/// Machine-readable report (diagnostics + CFG/indirect summary).
std::string to_json(const isa::Program& program, const AnalysisResult& result);

}  // namespace rse::analysis
