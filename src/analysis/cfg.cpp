#include "analysis/cfg.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace rse::analysis {
namespace {

bool in_text(const isa::Program& p, Addr addr) {
  return addr >= p.text_base && addr < p.text_end() && (addr & 3u) == 0;
}

Addr branch_target(Addr pc, const isa::Instr& instr) {
  return pc + 4 + (static_cast<Word>(instr.imm) << 2);
}

Addr jump_target(const isa::Instr& instr) { return instr.target << 2; }

/// Text addresses materialized as constants: the assembler's `la`/wide-`li`
/// expansion is always an adjacent `lui rt, hi; ori rt, rt, lo` pair, and
/// jump tables live in the data segment as aligned `.word label` entries.
std::set<Addr> collect_address_taken(const isa::Program& p,
                                     const std::vector<isa::Instr>& decoded) {
  std::set<Addr> taken;
  for (std::size_t i = 0; i + 1 < decoded.size(); ++i) {
    const isa::Instr& hi = decoded[i];
    const isa::Instr& lo = decoded[i + 1];
    if (hi.op != isa::Op::kLui || lo.op != isa::Op::kOri) continue;
    if (lo.rt != hi.rt || lo.rs != hi.rt) continue;
    const Addr value = (static_cast<Addr>(static_cast<u32>(hi.imm)) << 16) |
                       (static_cast<u32>(lo.imm) & 0xFFFFu);
    if (in_text(p, value)) taken.insert(value);
  }
  for (std::size_t i = 0; i + 4 <= p.data.size(); i += 4) {
    const Addr value = static_cast<Addr>(p.data[i]) | (static_cast<Addr>(p.data[i + 1]) << 8) |
                       (static_cast<Addr>(p.data[i + 2]) << 16) |
                       (static_cast<Addr>(p.data[i + 3]) << 24);
    if (in_text(p, value)) taken.insert(value);
  }
  return taken;
}

bool ends_block(const isa::Instr& instr) {
  const isa::OpClass c = instr.op_class();
  return c == isa::OpClass::kBranch || c == isa::OpClass::kJump || c == isa::OpClass::kSyscall;
}

}  // namespace

const BasicBlock* ControlFlowGraph::block_at(Addr pc) const {
  auto it = std::upper_bound(blocks.begin(), blocks.end(), pc,
                             [](Addr a, const BasicBlock& b) { return a < b.start; });
  if (it == blocks.begin()) return nullptr;
  --it;
  return (pc >= it->start && pc < it->end) ? &*it : nullptr;
}

u32 ControlFlowGraph::reachable_blocks() const {
  u32 n = 0;
  for (const BasicBlock& b : blocks) n += b.reachable ? 1 : 0;
  return n;
}

ControlFlowGraph build_cfg(const isa::Program& program) {
  ControlFlowGraph cfg;
  cfg.text_base = program.text_base;
  cfg.text_end = program.text_end();
  if (program.text.empty()) return cfg;

  std::vector<isa::Instr> decoded(program.text.size());
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    decoded[i] = isa::decode(program.text[i]);
  }
  cfg.address_taken = collect_address_taken(program, decoded);

  // ---- pass 1: leaders -----------------------------------------------------
  std::set<Addr> leaders;
  leaders.insert(program.entry);
  leaders.insert(cfg.text_base);
  for (Addr a : cfg.address_taken) leaders.insert(a);
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    const Addr pc = cfg.text_base + static_cast<Addr>(i * 4);
    const isa::Instr& instr = decoded[i];
    if (!ends_block(instr)) continue;
    if (pc + 4 < cfg.text_end) leaders.insert(pc + 4);
    switch (instr.op_class()) {
      case isa::OpClass::kBranch: {
        const Addr t = branch_target(pc, instr);
        if (in_text(program, t)) leaders.insert(t);
        break;
      }
      case isa::OpClass::kJump:
        if (instr.op == isa::Op::kJ || instr.op == isa::Op::kJal) {
          const Addr t = jump_target(instr);
          if (in_text(program, t)) leaders.insert(t);
        }
        break;
      default:
        break;
    }
  }

  // ---- pass 2: block partition and call edges ------------------------------
  std::vector<Addr> starts(leaders.begin(), leaders.end());
  starts.erase(std::remove_if(starts.begin(), starts.end(),
                              [&](Addr a) { return !in_text(program, a); }),
               starts.end());
  for (std::size_t i = 0; i < starts.size(); ++i) {
    BasicBlock block;
    block.index = static_cast<u32>(i);
    block.start = starts[i];
    const Addr limit = i + 1 < starts.size() ? starts[i + 1] : cfg.text_end;
    Addr pc = block.start;
    while (pc + 4 < limit && !ends_block(decoded[(pc - cfg.text_base) / 4])) pc += 4;
    block.end = pc + 4;
    cfg.blocks.push_back(block);
  }

  for (std::size_t i = 0; i < decoded.size(); ++i) {
    const isa::Instr& instr = decoded[i];
    if (instr.op != isa::Op::kJal) continue;
    const Addr pc = cfg.text_base + static_cast<Addr>(i * 4);
    cfg.calls.push_back({pc, jump_target(instr), pc + 4});
  }

  // Function-entry candidates for return-edge inference: direct callees,
  // address-taken addresses, and the entry point.  Return sites group by the
  // nearest preceding candidate.
  std::set<Addr> function_entries;
  function_entries.insert(program.entry);
  for (const CallEdge& call : cfg.calls) {
    if (in_text(program, call.callee)) function_entries.insert(call.callee);
  }
  for (Addr a : cfg.address_taken) function_entries.insert(a);
  std::map<Addr, std::vector<Addr>> returns_by_entry;  // entry -> return sites
  for (const CallEdge& call : cfg.calls) {
    if (in_text(program, call.callee)) returns_by_entry[call.callee].push_back(call.return_site);
  }

  // ---- pass 3: successors --------------------------------------------------
  const std::vector<Addr> taken_list(cfg.address_taken.begin(), cfg.address_taken.end());
  for (BasicBlock& block : cfg.blocks) {
    const isa::Instr& term = decoded[(block.terminator_pc() - cfg.text_base) / 4];
    const Addr fallthrough = block.end;
    switch (term.op_class()) {
      case isa::OpClass::kBranch:
        block.exit = BlockExit::kBranch;
        block.successors.push_back(fallthrough);
        block.successors.push_back(branch_target(block.terminator_pc(), term));
        break;
      case isa::OpClass::kJump:
        if (term.op == isa::Op::kJ) {
          block.exit = BlockExit::kJump;
          block.successors.push_back(jump_target(term));
        } else if (term.op == isa::Op::kJal) {
          block.exit = BlockExit::kCall;
          block.successors.push_back(jump_target(term));
        } else if (term.op == isa::Op::kJr && term.rs == isa::kRa) {
          block.exit = BlockExit::kReturn;
          // The containing function is the nearest preceding entry candidate;
          // its return sites are the jr's legal successors.  A function no
          // direct call reaches has an empty set: mark unresolved instead of
          // forbidding every target.
          auto entry = function_entries.upper_bound(block.terminator_pc());
          std::vector<Addr> sites;
          if (entry != function_entries.begin()) {
            --entry;
            auto found = returns_by_entry.find(*entry);
            if (found != returns_by_entry.end()) sites = found->second;
          }
          if (sites.empty()) {
            block.indirect_resolved = false;
          } else {
            block.successors = std::move(sites);
          }
        } else {
          // jr on a non-ra register or jalr: data-dependent target.  When the
          // program materializes text addresses anywhere (jump tables,
          // la-taken function pointers), that address-taken set is the legal
          // landing set (coarse-grained CFI); otherwise leave unresolved.
          block.exit = BlockExit::kIndirect;
          if (!taken_list.empty()) {
            block.successors = taken_list;
          } else {
            block.indirect_resolved = false;
          }
        }
        break;
      case isa::OpClass::kSyscall:
        block.exit = BlockExit::kSyscall;
        if (fallthrough < cfg.text_end) block.successors.push_back(fallthrough);
        break;
      default:
        block.exit = BlockExit::kFallThrough;
        if (fallthrough < cfg.text_end) block.successors.push_back(fallthrough);
        break;
    }
    std::sort(block.successors.begin(), block.successors.end());
    block.successors.erase(std::unique(block.successors.begin(), block.successors.end()),
                           block.successors.end());
  }

  // ---- pass 4: reachability ------------------------------------------------
  // Roots: the entry point plus every address-taken text address (thread
  // entries and jump-table targets enter execution without a static edge).
  std::deque<Addr> frontier;
  auto mark = [&](Addr a) {
    BasicBlock* block = const_cast<BasicBlock*>(cfg.block_at(a));
    if (block != nullptr && !block->reachable) {
      block->reachable = true;
      frontier.push_back(block->start);
    }
  };
  mark(program.entry);
  for (Addr a : cfg.address_taken) mark(a);
  while (!frontier.empty()) {
    const Addr start = frontier.front();
    frontier.pop_front();
    const BasicBlock* block = cfg.block_at(start);
    for (Addr succ : block->successors) mark(succ);
    // A call returns: the instruction after the jal/jalr is reachable once
    // the callee is (approximated as always — exactness needs
    // interprocedural may-return analysis).
    if (block->exit == BlockExit::kCall) {
      mark(block->end);
    } else if (block->exit == BlockExit::kIndirect &&
               decoded[(block->terminator_pc() - cfg.text_base) / 4].op ==
                   isa::Op::kJalr) {
      mark(block->end);
    }
  }

  return cfg;
}

IndirectTargetTable indirect_targets(const ControlFlowGraph& cfg) {
  IndirectTargetTable table;
  for (const BasicBlock& block : cfg.blocks) {
    if (block.exit != BlockExit::kReturn && block.exit != BlockExit::kIndirect) continue;
    if (!block.indirect_resolved) continue;
    table.emplace(block.terminator_pc(), block.successors);
  }
  return table;
}

}  // namespace rse::analysis
