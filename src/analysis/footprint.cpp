#include "analysis/footprint.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <memory>
#include <numeric>
#include <set>

#include "mem/main_memory.hpp"

namespace rse::analysis {
namespace {

// Register values are modeled as the signed-i32 reinterpretation of the
// 32-bit register, computed exactly in i64; any operation whose result
// leaves [-2^31, 2^31) would wrap at runtime and degrades to Unknown.  This
// matches the core: addresses stay below 0x8000'0000 (kDefaultStackTop
// guards the signed-compare boundary) and blt/bge compare as i32.
constexpr i64 kMinVal = -(i64{1} << 31);
constexpr i64 kMaxVal = (i64{1} << 31) - 1;

// A block whose in-state keeps changing past this many joins has its
// changing registers widened straight to Unknown, bounding the fixpoint.
constexpr u32 kMaxBlockVisits = 40;

// A resolved range wider than this is useless as a page prediction (it
// would whitelist the whole address space); treat the site as unresolved.
constexpr i64 kMaxSpanBytes = i64{1} << 20;

// Context-sensitive mode: at most this many per-(callee, argument-tuple)
// clones live in the memo cache; further distinct contexts fall back to the
// joined context (which is always sound — it is the classic join-over-all-
// call-sites state the context-insensitive pass uses for everything).
constexpr u32 kMaxContextClones = 32;

// Spawn-context binding (thread-entry $a0 from create-site $a1) iterates
// run → harvest → re-run until the observed create arguments are covered by
// the assumed binding; give up (keep the unbound, fully sound probe run)
// after this many bound re-runs.
constexpr u32 kMaxSpawnRounds = 3;

/// Strided-interval value: the concrete set is {lo, lo+stride, ..., hi}.
/// Normalization invariant (enforced by make()): stride == 0 iff the value
/// is a singleton (lo == hi); stride == 1 is the dense interval; stride >= 2
/// requires (hi - lo) % stride == 0 so hi is always on the residue grid.
/// With field sensitivity off, stride is a pure function of the bounds
/// (0 for singletons, 1 otherwise), so the pre-stride interval semantics
/// are reproduced bit-for-bit.
struct AbsVal {
  enum class Kind : u8 { kUnknown, kAbs, kSp, kGp };
  Kind kind = Kind::kUnknown;
  i64 lo = 0;
  i64 hi = 0;
  i64 stride = 0;

  bool operator==(const AbsVal& o) const {
    if (kind != o.kind) return false;
    if (kind == Kind::kUnknown) return true;
    return lo == o.lo && hi == o.hi && stride == o.stride;
  }
};

using Kind = AbsVal::Kind;

/// Constructor + normalizer.  Degenerate strides (zero or negative on a
/// non-singleton) and misaligned strides ((hi-lo) % stride != 0) demote to
/// the dense hull — never the other way around, so the value set can only
/// grow and no caller can under-approximate by passing a junk stride.
AbsVal make(Kind kind, i64 lo, i64 hi, i64 stride = 1) {
  if (kind == Kind::kUnknown || lo > hi || lo < kMinVal || hi > kMaxVal) {
    return AbsVal{};
  }
  if (lo == hi) return AbsVal{kind, lo, hi, 0};
  if (stride <= 1 || (hi - lo) % stride != 0) return AbsVal{kind, lo, hi, 1};
  return AbsVal{kind, lo, hi, stride};
}

AbsVal abs_const(i64 v) { return make(Kind::kAbs, v, v); }

bool is_singleton(const AbsVal& v) {
  return v.kind != Kind::kUnknown && v.lo == v.hi;
}

/// Join of two strided intervals.  Field mode keeps the coarsest residue
/// grid both operands live on: g = gcd(stride_a, stride_b, |lo_a - lo_b|)
/// (gcd(0, x) = x, so singletons are the identity).  Every element of
/// either operand is ≡ min(lo_a, lo_b) (mod g) — the strides divide g and
/// the anchors differ by a multiple of g — and both his sit on the grid by
/// the normalization invariant, so the result is a superset of the union
/// (sound).  Successive joins can only shrink g by divisibility, so stride
/// chains are finite and termination is preserved.
AbsVal join(const AbsVal& a, const AbsVal& b, bool field = false) {
  if (a.kind == Kind::kUnknown || b.kind == Kind::kUnknown || a.kind != b.kind) {
    return AbsVal{};
  }
  const i64 lo = std::min(a.lo, b.lo);
  const i64 hi = std::max(a.hi, b.hi);
  if (!field) return make(a.kind, lo, hi);
  i64 g = std::gcd(a.stride, b.stride);
  g = std::gcd(g, a.lo >= b.lo ? a.lo - b.lo : b.lo - a.lo);
  return make(a.kind, lo, hi, g == 0 ? 0 : g);
}

/// Total order for the context memo-cache key (any consistent order works;
/// it must distinguish everything operator== does, including the stride).
bool absval_less(const AbsVal& a, const AbsVal& b) {
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.kind == Kind::kUnknown) return false;
  if (a.lo != b.lo) return a.lo < b.lo;
  if (a.hi != b.hi) return a.hi < b.hi;
  return a.stride < b.stride;
}

using State = std::array<AbsVal, isa::kNumRegs>;

/// Abstract argument tuple a context clone is keyed on.
using ArgTuple = std::array<AbsVal, 4>;  // $a0-$a3

struct CtxKey {
  Addr entry = 0;
  ArgTuple args{};
  /// Recursion rung ($sp depth) of the clone: 0 for plain argument-tuple
  /// contexts, k >= 1 for the k-th nested activation of a recursive entry
  /// (field-sensitive mode only).
  u32 rung = 0;

  bool operator<(const CtxKey& o) const {
    if (entry != o.entry) return entry < o.entry;
    if (rung != o.rung) return rung < o.rung;
    for (size_t i = 0; i < args.size(); ++i) {
      if (!(args[i] == o.args[i])) return absval_less(args[i], o.args[i]);
    }
    return false;
  }
};

/// Root state: everything Unknown except the architectural invariants.
State root_state() {
  State s{};
  s[0] = abs_const(0);
  s[isa::kSp] = make(Kind::kSp, 0, 0);
  s[isa::kGp] = make(Kind::kGp, 0, 0);
  return s;
}

/// The i32 reinterpretation of an exact u32 bit pattern.
i64 from_u32(u32 v) { return static_cast<i64>(static_cast<i32>(v)); }

void set_dest(State& s, u8 reg, const AbsVal& v) {
  if (reg != 0) s[reg] = v;
}

/// Interval addition; keeps the (at most one) relative base.  Sums of
/// strided sets live on the gcd grid of the operand strides (a singleton's
/// stride 0 is the gcd identity, so singleton + strided is exact).  A
/// stride >= 2 only exists in field mode, so no gating is needed here.
AbsVal add_vals(const AbsVal& a, const AbsVal& b) {
  const i64 s = std::gcd(a.stride, b.stride);
  if (a.kind == Kind::kAbs && b.kind == Kind::kAbs) {
    return make(Kind::kAbs, a.lo + b.lo, a.hi + b.hi, s);
  }
  if (a.kind != Kind::kUnknown && b.kind == Kind::kAbs) {
    return make(a.kind, a.lo + b.lo, a.hi + b.hi, s);
  }
  if (a.kind == Kind::kAbs && b.kind != Kind::kUnknown) {
    return make(b.kind, a.lo + b.lo, a.hi + b.hi, s);
  }
  return AbsVal{};
}

/// Transfer function for one non-control instruction (control effects —
/// link registers, clobbers, refinement — are handled on edges).  `field`
/// gates the two stride-*introduction* points (shift-left and multiply):
/// with it off no stride >= 2 ever enters the state, reproducing the dense
/// interval semantics exactly.
void transfer(const isa::Instr& in, State& s, bool field) {
  using isa::Op;
  const AbsVal rs = s[in.rs];
  const AbsVal rt = s[in.rt];
  const u32 uimm = static_cast<u32>(in.imm) & 0xFFFFu;
  const i64 imm = in.imm;

  switch (in.op) {
    case Op::kAdd: set_dest(s, in.rd, add_vals(rs, rt)); break;
    case Op::kAddi: set_dest(s, in.rt, add_vals(rs, abs_const(imm))); break;
    case Op::kSub:
      if (rt.kind == Kind::kAbs && rs.kind != Kind::kUnknown) {
        // Abs-Abs stays Abs; Sp-Abs / Gp-Abs keep the base.
        set_dest(s, in.rd, make(rs.kind, rs.lo - rt.hi, rs.hi - rt.lo,
                                std::gcd(rs.stride, rt.stride)));
      } else if (rs.kind == rt.kind && rs.kind != Kind::kUnknown) {
        // Same-base difference (Sp-Sp, Gp-Gp): the base cancels.
        set_dest(s, in.rd, make(Kind::kAbs, rs.lo - rt.hi, rs.hi - rt.lo,
                                std::gcd(rs.stride, rt.stride)));
      } else {
        set_dest(s, in.rd, AbsVal{});
      }
      break;
    case Op::kLui:
      set_dest(s, in.rt, abs_const(from_u32(uimm << 16)));
      break;
    case Op::kOri:
      if (is_singleton(rs) && rs.kind == Kind::kAbs) {
        set_dest(s, in.rt, abs_const(from_u32(static_cast<u32>(rs.lo) | uimm)));
      } else if (uimm == 0) {
        set_dest(s, in.rt, rs);
      } else {
        set_dest(s, in.rt, AbsVal{});
      }
      break;
    case Op::kAndi:
      // rs & uimm lands in [0, uimm] whatever rs is (uimm is 16-bit).
      if (is_singleton(rs) && rs.kind == Kind::kAbs) {
        set_dest(s, in.rt, abs_const(from_u32(static_cast<u32>(rs.lo) & uimm)));
      } else {
        set_dest(s, in.rt, make(Kind::kAbs, 0, static_cast<i64>(uimm)));
      }
      break;
    case Op::kXori:
      if (is_singleton(rs) && rs.kind == Kind::kAbs) {
        set_dest(s, in.rt, abs_const(from_u32(static_cast<u32>(rs.lo) ^ uimm)));
      } else {
        set_dest(s, in.rt, AbsVal{});
      }
      break;
    case Op::kAnd:
      if (is_singleton(rs) && is_singleton(rt) && rs.kind == Kind::kAbs &&
          rt.kind == Kind::kAbs) {
        set_dest(s, in.rd,
                 abs_const(from_u32(static_cast<u32>(rs.lo) & static_cast<u32>(rt.lo))));
      } else if (rt.kind == Kind::kAbs && rt.lo == rt.hi && rt.lo >= 0) {
        set_dest(s, in.rd, make(Kind::kAbs, 0, rt.lo));  // mask bound
      } else if (rs.kind == Kind::kAbs && rs.lo == rs.hi && rs.lo >= 0) {
        set_dest(s, in.rd, make(Kind::kAbs, 0, rs.lo));
      } else {
        set_dest(s, in.rd, AbsVal{});
      }
      break;
    case Op::kOr:
      if (is_singleton(rs) && is_singleton(rt) && rs.kind == Kind::kAbs &&
          rt.kind == Kind::kAbs) {
        set_dest(s, in.rd,
                 abs_const(from_u32(static_cast<u32>(rs.lo) | static_cast<u32>(rt.lo))));
      } else if (rt.kind == Kind::kAbs && rt.lo == 0 && rt.hi == 0) {
        set_dest(s, in.rd, rs);  // or rd, rs, r0 — the `move` idiom
      } else if (rs.kind == Kind::kAbs && rs.lo == 0 && rs.hi == 0) {
        set_dest(s, in.rd, rt);
      } else {
        set_dest(s, in.rd, AbsVal{});
      }
      break;
    case Op::kXor:
    case Op::kNor:
      if (is_singleton(rs) && is_singleton(rt) && rs.kind == Kind::kAbs &&
          rt.kind == Kind::kAbs) {
        const u32 a = static_cast<u32>(rs.lo);
        const u32 b = static_cast<u32>(rt.lo);
        set_dest(s, in.rd, abs_const(from_u32(in.op == Op::kXor ? (a ^ b) : ~(a | b))));
      } else {
        set_dest(s, in.rd, AbsVal{});
      }
      break;
    case Op::kSll: {
      if (rt.kind == Kind::kAbs && rt.lo >= 0) {
        // Stride introduction: {lo..hi} << n walks a 2^n-residue grid
        // (scaled by the operand's own stride when it already has one).
        const i64 stride =
            field ? (std::max<i64>(rt.stride, 1) << in.shamt) : 1;
        set_dest(s, in.rd,
                 make(Kind::kAbs, rt.lo << in.shamt, rt.hi << in.shamt, stride));
      } else {
        set_dest(s, in.rd, AbsVal{});
      }
      break;
    }
    case Op::kSrl:
    case Op::kSra: {
      if (rt.kind == Kind::kAbs && rt.lo >= 0) {
        // Exact only when the grid survives the shift (stride divisible by
        // 2^n); otherwise the shifted elements are not equally spaced and
        // the result demotes to the dense hull.
        const i64 stride =
            (rt.stride >= 2 && (rt.stride % (i64{1} << in.shamt)) == 0)
                ? (rt.stride >> in.shamt)
                : 1;
        set_dest(s, in.rd,
                 make(Kind::kAbs, rt.lo >> in.shamt, rt.hi >> in.shamt, stride));
      } else {
        set_dest(s, in.rd, AbsVal{});
      }
      break;
    }
    case Op::kSlt:
    case Op::kSltu:
      set_dest(s, in.rd, make(Kind::kAbs, 0, 1));
      break;
    case Op::kSlti:
    case Op::kSltiu:
      set_dest(s, in.rt, make(Kind::kAbs, 0, 1));
      break;
    case Op::kMul: {
      if (is_singleton(rs) && is_singleton(rt) && rs.kind == Kind::kAbs &&
          rt.kind == Kind::kAbs) {
        set_dest(s, in.rd, make(Kind::kAbs, rs.lo * rt.lo, rs.lo * rt.lo));
      } else if (rs.kind == Kind::kAbs && rt.kind == Kind::kAbs && rs.lo >= 0 &&
                 rt.lo >= 0) {
        // Stride introduction: a range scaled by a constant factor c walks
        // a c*stride grid ({c*lo, c*(lo+s), ...} is exact).
        i64 stride = 1;
        if (field) {
          if (is_singleton(rs)) {
            stride = rs.lo * std::max<i64>(rt.stride, 1);
          } else if (is_singleton(rt)) {
            stride = rt.lo * std::max<i64>(rs.stride, 1);
          }
        }
        set_dest(s, in.rd, make(Kind::kAbs, rs.lo * rt.lo, rs.hi * rt.hi, stride));
      } else {
        set_dest(s, in.rd, AbsVal{});
      }
      break;
    }
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
    case Op::kMulh:
    case Op::kDiv:
    case Op::kRem:
      set_dest(s, in.rd, AbsVal{});
      break;
    case Op::kLw:
    case Op::kLh:
    case Op::kLhu:
    case Op::kLb:
    case Op::kLbu:
      set_dest(s, in.rt, AbsVal{});
      break;
    default:
      // Stores, branches, jumps, chk, syscall: no GPR effect here (link
      // registers and syscall clobbers are applied on the outgoing edge).
      break;
  }
  s[0] = abs_const(0);
}

/// Caller-saved registers (clobbered across a call's fall-through edge).
bool caller_saved(u8 reg) {
  if (reg >= 1 && reg <= 15) return true;            // at, v0-v1, a0-a3, t0-t7
  if (reg >= 24 && reg <= 27) return true;           // t8-t9, k0-k1
  return reg == isa::kRa;
}

State clobber_call(const State& in) {
  State out = in;
  for (u8 r = 0; r < isa::kNumRegs; ++r) {
    if (caller_saved(r)) out[r] = AbsVal{};
  }
  out[0] = abs_const(0);
  return out;
}

u32 caller_saved_mask() {
  u32 mask = 0;
  for (u8 r = 1; r < isa::kNumRegs; ++r) {
    if (caller_saved(r)) mask |= (1u << r);
  }
  return mask;
}

/// Registers a call's fall-through may refine from a callee summary.  The
/// flat model already assumes everything outside the caller-saved set is
/// ABI-preserved, so summaries only ever *improve* on it for caller-saved
/// registers — plus sp/gp, whose clobber bits the summary clears only under
/// an arithmetic restore proof (see summarize_function).
u32 refinable_mask() {
  return caller_saved_mask() | (1u << isa::kSp) | (1u << isa::kGp);
}

/// Syntactic register-write mask of one instruction (jal links ra, syscall
/// clobbers v0/v1; r0 writes are discarded by dest_reg()).
u32 write_mask(const isa::Instr& in) {
  u32 mask = 0;
  if (const auto rd = in.dest_reg()) mask |= (1u << *rd);
  if (in.op == isa::Op::kSyscall) {
    mask |= (1u << isa::kV0) | (1u << isa::kV1);
  }
  return mask;
}

/// Re-expresses a value computed against a callee's entry sp/gp in the
/// caller's frame: the callee entered with sp == sp_at_call and
/// gp == gp_at_call, so Sp[lo,hi] becomes sp_at_call + [lo,hi] (same for
/// Gp); absolute values carry over unchanged.
AbsVal rebase(const AbsVal& v, const AbsVal& sp_at_call, const AbsVal& gp_at_call) {
  switch (v.kind) {
    case Kind::kAbs:
      return v;
    case Kind::kSp:
      return add_vals(sp_at_call, make(Kind::kAbs, v.lo, v.hi));
    case Kind::kGp:
      return add_vals(gp_at_call, make(Kind::kAbs, v.lo, v.hi));
    default:
      return AbsVal{};
  }
}

/// Internal parametric function summary (exported as FunctionSummary).
/// Everything is relative to the function's own entry sp/gp.
struct Summary {
  Addr entry = 0;
  bool summarized = false;
  u32 clobbered = 0;  // see FunctionSummary::clobbered_regs
  bool returns = false;
  std::set<u32> pages;
  std::set<u32> store_pages;
  bool has_sp = false;
  i64 sp_lo = 0;
  i64 sp_hi = 0;
  bool has_gp = false;
  i64 gp_lo = 0;
  i64 gp_hi = 0;
  u32 unknown = 0;
  // Joined v0/v1 over all return paths, vs. the entry sp/gp (Unknown when
  // the function doesn't produce a trackable result).
  AbsVal ret_v0;
  AbsVal ret_v1;

  bool operator==(const Summary& o) const {
    return entry == o.entry && summarized == o.summarized &&
           clobbered == o.clobbered && returns == o.returns &&
           pages == o.pages && store_pages == o.store_pages &&
           has_sp == o.has_sp && (!has_sp || (sp_lo == o.sp_lo && sp_hi == o.sp_hi)) &&
           has_gp == o.has_gp && (!has_gp || (gp_lo == o.gp_lo && gp_hi == o.gp_hi)) &&
           unknown == o.unknown && ret_v0 == o.ret_v0 && ret_v1 == o.ret_v1;
  }
  bool operator!=(const Summary& o) const { return !(*this == o); }
};

using SummaryMap = std::map<Addr, Summary>;

/// Range refinement along a conditional-branch edge.  Only same-kind
/// operands are comparable (Abs vs Abs, or same-base offsets where the base
/// cancels); unsigned branches are treated as signed only when both ranges
/// are provably non-negative (no wrap across the sign boundary).
void refine_edge(const isa::Instr& in, bool taken, State& s) {
  using isa::Op;
  AbsVal a = s[in.rs];
  AbsVal b = s[in.rt];
  if (a.kind == Kind::kUnknown || b.kind == Kind::kUnknown || a.kind != b.kind) {
    return;
  }
  // Residue grids survive refinement: clamped bounds are realigned onto the
  // operand's own original grid (lo up to the next element, hi down to the
  // previous), which is exact — off-grid values were never in the set.
  const i64 a_anchor = a.lo, a_stride = a.stride;
  const i64 b_anchor = b.lo, b_stride = b.stride;
  const bool unsigned_cmp = in.op == Op::kBltu || in.op == Op::kBgeu;
  if (unsigned_cmp && (a.lo < 0 || b.lo < 0)) return;

  // Normalize to one of: a < b holds, or a >= b holds, or ==, or !=.
  enum class Rel { kLt, kGe, kEq, kNe, kNone };
  Rel rel = Rel::kNone;
  switch (in.op) {
    case Op::kBlt:
    case Op::kBltu:
      rel = taken ? Rel::kLt : Rel::kGe;
      break;
    case Op::kBge:
    case Op::kBgeu:
      rel = taken ? Rel::kGe : Rel::kLt;
      break;
    case Op::kBeq:
      rel = taken ? Rel::kEq : Rel::kNe;
      break;
    case Op::kBne:
      rel = taken ? Rel::kNe : Rel::kEq;
      break;
    default:
      return;
  }

  switch (rel) {
    case Rel::kLt:  // a < b
      a.hi = std::min(a.hi, b.hi - 1);
      b.lo = std::max(b.lo, a.lo + 1);
      break;
    case Rel::kGe:  // a >= b
      a.lo = std::max(a.lo, b.lo);
      b.hi = std::min(b.hi, a.hi);
      break;
    case Rel::kEq: {  // intersect
      const i64 lo = std::max(a.lo, b.lo);
      const i64 hi = std::min(a.hi, b.hi);
      a.lo = b.lo = lo;
      a.hi = b.hi = hi;
      break;
    }
    case Rel::kNe:  // shave a singleton off a matching endpoint
      if (is_singleton(b)) {
        // The next possible element past a shaved endpoint is one grid
        // step away, not one byte.
        if (a.lo == b.lo) a.lo += std::max<i64>(a_stride, 1);
        if (a.hi == b.lo) a.hi -= std::max<i64>(a_stride, 1);
      }
      if (is_singleton(a)) {
        if (b.lo == a.lo) b.lo += std::max<i64>(b_stride, 1);
        if (b.hi == a.lo) b.hi -= std::max<i64>(b_stride, 1);
      }
      break;
    case Rel::kNone:
      return;
  }
  // Realign clamped bounds onto each operand's original residue grid: lo
  // rounds up to the next on-grid element, hi rounds down.  A grid with no
  // element left in the clamped range comes out empty (lo > hi) and marks
  // the edge infeasible below.
  auto realign = [](AbsVal& v, i64 anchor, i64 stride) {
    if (stride < 2) return;
    const i64 mlo = ((v.lo - anchor) % stride + stride) % stride;
    if (mlo != 0) v.lo += stride - mlo;
    const i64 mhi = ((v.hi - anchor) % stride + stride) % stride;
    v.hi -= mhi;
  };
  realign(a, a_anchor, a_stride);
  realign(b, b_anchor, b_stride);
  // An empty refined range marks the edge statically infeasible; the caller
  // detects it via the sentinel and skips propagation.
  s[in.rs] =
      (a.lo > a.hi) ? AbsVal{Kind::kAbs, 1, 0} : make(a.kind, a.lo, a.hi, a_stride);
  s[in.rt] =
      (b.lo > b.hi) ? AbsVal{Kind::kAbs, 1, 0} : make(b.kind, b.lo, b.hi, b_stride);
  s[0] = abs_const(0);
}

bool infeasible(const State& s) {
  for (const AbsVal& v : s) {
    if (v.kind != Kind::kUnknown && v.lo > v.hi) return true;
  }
  return false;
}

u32 access_size(isa::Op op) {
  using isa::Op;
  switch (op) {
    case Op::kLw:
    case Op::kSw:
      return 4;
    case Op::kLh:
    case Op::kLhu:
    case Op::kSh:
      return 2;
    default:
      return 1;
  }
}

bool is_load(isa::Op op) {
  using isa::Op;
  return op == Op::kLw || op == Op::kLh || op == Op::kLhu || op == Op::kLb ||
         op == Op::kLbu;
}

bool is_store(isa::Op op) {
  using isa::Op;
  return op == Op::kSw || op == Op::kSh || op == Op::kSb;
}

void add_page_range(std::set<u32>& pages, Addr lo, Addr hi) {
  for (u32 page = mem::page_of(lo); page <= mem::page_of(hi); ++page) {
    pages.insert(page);
  }
}

/// Strided page fold: pages touched by accesses of `size` bytes starting at
/// {lo, lo+stride, ..., <= hi-size+1}.  For stride <= page size consecutive
/// starts land on the same or adjacent pages, so the dense hull fold is
/// already exact; only a stride wider than a page can skip pages, and then
/// the element count is bounded by kMaxSpanBytes / kPageBytes (the span was
/// capped in classify_site).  A degenerate stride (<= 0 from a demoted
/// value) folds the dense hull — never under-approximates.
void add_page_range_strided(std::set<u32>& pages, Addr lo, Addr hi, i64 stride,
                            u32 size) {
  if (stride <= static_cast<i64>(mem::kPageBytes)) {
    add_page_range(pages, lo, hi);
    return;
  }
  const i64 last = static_cast<i64>(hi) - static_cast<i64>(size) + 1;
  for (i64 e = static_cast<i64>(lo); e <= last; e += stride) {
    add_page_range(pages, static_cast<Addr>(e),
                   static_cast<Addr>(e + static_cast<i64>(size) - 1));
  }
}

void record_envelope(bool& has, i64& env_lo, i64& env_hi, i64 lo, i64 hi) {
  if (!has) {
    has = true;
    env_lo = lo;
    env_hi = hi;
  } else {
    env_lo = std::min(env_lo, lo);
    env_hi = std::max(env_hi, hi);
  }
}

/// Widening thresholds: the i32 constants the program can materialize
/// (immediates plus li/la lui+ori expansions).  Loop bounds and data
/// segment base addresses are exactly these, so jumping a growing bound to
/// the nearest threshold first — and to the domain limit only when no
/// threshold fits or the bound already sits on one — keeps loop counters
/// and outer-loop-carried pointers finite where a straight jump to the
/// domain limit would overflow follow-on arithmetic into Unknown.
std::vector<i64> collect_thresholds(const isa::Program& program,
                                    const ControlFlowGraph& cfg) {
  std::set<i64> out;
  auto add = [&](i64 v) {
    if (v >= kMinVal && v <= kMaxVal) out.insert(v);
  };
  for (const BasicBlock& block : cfg.blocks) {
    bool have_lui = false;
    u8 lui_rt = 0;
    u32 lui_val = 0;
    for (Addr pc = block.start; pc < block.end; pc += 4) {
      const isa::Instr in = isa::decode(program.text_word(pc));
      const u32 uimm = static_cast<u32>(in.imm) & 0xFFFFu;
      switch (in.op) {
        case isa::Op::kAddi:
          add(in.imm);
          break;
        case isa::Op::kLui:
          add(from_u32(uimm << 16));
          break;
        case isa::Op::kOri:
          if (in.rs == 0) add(static_cast<i64>(uimm));
          if (have_lui && in.rs == lui_rt) add(from_u32(lui_val | uimm));
          break;
        default:
          break;
      }
      if (in.op == isa::Op::kLui) {
        have_lui = true;
        lui_rt = in.rt;
        lui_val = uimm << 16;
      } else if (const auto rd = in.dest_reg(); rd.has_value() && have_lui &&
                 *rd == lui_rt && in.op != isa::Op::kOri) {
        have_lui = false;
      }
    }
  }
  return std::vector<i64>(out.begin(), out.end());
}

/// Classified byte range of one access site given the base register value.
struct SiteRange {
  AddressBase base = AddressBase::kUnknown;
  AccessPrecision precision = AccessPrecision::kUnknown;
  i64 lo = 0;
  i64 hi = 0;
  /// Residue grid of the access *start* addresses inside [lo, hi - size + 1]
  /// (0 = singleton, 1 = dense); [lo, hi] includes the access width.
  i64 stride = 0;
  u32 size = 1;
};

SiteRange classify_site(const AbsVal& base, i64 imm, u32 size) {
  SiteRange r;
  if (base.kind == Kind::kUnknown) return r;
  const i64 lo = base.lo + imm;
  const i64 hi = base.hi + imm + static_cast<i64>(size) - 1;
  if (hi - lo > kMaxSpanBytes) return r;
  // Unified wrap guard for every base kind: an interval that leaves the
  // signed-i32 domain would wrap at runtime, so it must demote to Unknown —
  // folding it into a page index or sp/gp envelope would whitelist (or
  // later u32-cast to) the wrong pages.  Absolute addresses additionally
  // may not be negative.
  if (lo < kMinVal || hi > kMaxVal) return r;
  if (base.kind == Kind::kAbs && lo < 0) return r;
  r.lo = lo;
  r.hi = hi;
  r.stride = base.stride;
  r.size = size;
  r.precision =
      is_singleton(base) ? AccessPrecision::kExact : AccessPrecision::kOver;
  switch (base.kind) {
    case Kind::kAbs: r.base = AddressBase::kAbsolute; break;
    case Kind::kSp: r.base = AddressBase::kStack; break;
    case Kind::kGp: r.base = AddressBase::kGlobal; break;
    default: break;
  }
  return r;
}

/// Per-block induction pass (field mode): which registers the program ever
/// advances by a loop-carried step, and by how much.  `addi r, r, imm`
/// records |imm| as a known step; `add`/`sub` with the destination among
/// the sources is a self-update with a register step (any stride could be
/// legitimate).  propagate() uses this as a precision filter: a residue
/// grid born purely from *joining* dense/singleton inputs is kept only
/// when some recorded step explains it — otherwise it is coincidence (two
/// unrelated constants meeting at a join point) and the value demotes to
/// the dense hull.  Purely a precision heuristic: both keeping and
/// demoting are sound.
struct InductionSteps {
  std::array<std::vector<i64>, isa::kNumRegs> steps{};
  std::array<bool, isa::kNumRegs> any_step{};

  bool explains(u8 reg, i64 stride) const {
    if (any_step[reg]) return true;
    for (const i64 d : steps[reg]) {
      if (stride % d == 0) return true;
    }
    return false;
  }
};

InductionSteps collect_induction(const isa::Program& program,
                                 const ControlFlowGraph& cfg) {
  InductionSteps ind;
  for (const BasicBlock& block : cfg.blocks) {
    for (Addr pc = block.start; pc < block.end; pc += 4) {
      const isa::Instr in = isa::decode(program.text_word(pc));
      switch (in.op) {
        case isa::Op::kAddi:
          if (in.rt == in.rs && in.rt != 0 && in.imm != 0) {
            const i64 d = in.imm < 0 ? -static_cast<i64>(in.imm)
                                     : static_cast<i64>(in.imm);
            ind.steps[in.rt].push_back(d);
          }
          break;
        case isa::Op::kAdd:
        case isa::Op::kSub:
          if (in.rd != 0 && (in.rd == in.rs || in.rd == in.rt)) {
            ind.any_step[in.rd] = true;
          }
          break;
        default:
          break;
      }
    }
  }
  for (auto& v : ind.steps) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return ind;
}

/// Worklist data-flow engine over block in-states.  Two modes share it:
/// the program-wide pass (enter_callees = true, call fall-throughs refined
/// from summaries when available) and the per-function summary pass
/// (region-restricted, parametric entry state, callees modeled only by
/// their summaries).
struct FixpointPass {
  FixpointPass(const isa::Program& p, const ControlFlowGraph& g)
      : program(p), cfg(g) {}

  const isa::Program& program;
  const ControlFlowGraph& cfg;
  bool interprocedural = false;
  const SummaryMap* summaries = nullptr;
  // Summary mode: [region_lo, region_hi) bounds the function; propagation
  // to a target outside it is not followed and sets left_region (the
  // function cannot be summarized).  region_hi == 0 means unrestricted.
  Addr region_lo = 0;
  Addr region_hi = 0;
  bool enter_callees = true;
  const std::vector<i64>* thresholds = nullptr;  // sorted; ipa mode only

  // Context-sensitive cloning (program-wide pass only; 0 = single joined
  // context, the exact context-insensitive behavior).  Direct calls whose
  // $a0-$a3 abstract tuple is not all-Unknown enter a per-(callee, tuple)
  // clone memoized in `context_index`, up to `context_depth` nested clones
  // per call path and `max_context_clones` cache entries; everything else
  // (indirect calls, exhausted depth, saturated cache) falls back to the
  // joined context 0.
  u32 context_depth = 0;
  u32 max_context_clones = kMaxContextClones;
  // Optional $a0 bindings for address-taken roots (thread entries), from
  // the create-site harvest in compute_footprint.  Only read when
  // context_depth > 0.
  const std::map<Addr, AbsVal>* spawn_bindings = nullptr;

  // Field-sensitive mode: strided-interval domain in transfer/join, plus
  // per-$sp-depth recursion contexts — a call whose callee entry is already
  // on the ancestor context chain clones per recursion rung up to sp_depth
  // (bypassing the context_depth budget but not the clone cache cap), so
  // each recursion level keeps its own frame envelope.
  bool field_sensitive = false;
  u32 sp_depth = 0;
  const InductionSteps* induction = nullptr;

  struct CtxInfo {
    Addr entry = 0;  // 0 for the joined root context
    ArgTuple args{};
    u32 depth = 0;
    u32 rung = 0;     // recursion rung of this clone (0 = not recursive)
    i32 parent = -1;  // index of the context that entered this clone
  };
  std::vector<CtxInfo> contexts;      // [0] = joined context
  std::map<CtxKey, u32> context_index;
  u32 contexts_cloned = 0;
  u32 context_fallbacks = 0;
  u32 spawn_contexts = 0;
  u32 sp_contexts = 0;

  // All per-block analysis state is context-major: index [ctx][block].
  std::vector<std::vector<State>> in_state;
  std::vector<std::vector<bool>> has_state;
  bool left_region = false;

  std::vector<std::vector<u32>> visits;
  std::deque<std::pair<u32, u32>> worklist;  // (context, block)
  std::vector<std::vector<bool>> queued;
  std::vector<u32> in_degree;  // per block, shared across contexts
  // Per-(context, block, register) widening strikes (ipa mode): 1 = jumped
  // to a threshold, 2 = jumped to the domain limits, 3 = forced Unknown.
  std::vector<std::vector<std::array<u8, isa::kNumRegs>>> strikes;

  bool in_region(Addr pc) const {
    return region_hi == 0 || (pc >= region_lo && pc < region_hi);
  }

  /// Smallest threshold covering the grown bound (domain limit when none).
  i64 threshold_hi(i64 grown) const {
    if (thresholds != nullptr) {
      const auto it =
          std::lower_bound(thresholds->begin(), thresholds->end(), grown);
      if (it != thresholds->end()) return *it;
    }
    return kMaxVal;
  }

  i64 threshold_lo(i64 shrunk) const {
    if (thresholds != nullptr) {
      const auto it =
          std::upper_bound(thresholds->begin(), thresholds->end(), shrunk);
      if (it != thresholds->begin()) return *std::prev(it);
    }
    return kMinVal;
  }

  const Summary* summary_of(Addr callee) const {
    if (summaries == nullptr) return nullptr;
    const auto it = summaries->find(callee);
    return it == summaries->end() ? nullptr : &it->second;
  }

  /// True when every call candidate is known and carries a usable summary.
  bool all_summarized(const std::vector<Addr>& targets) const {
    if (!interprocedural || targets.empty()) return false;
    for (Addr t : targets) {
      const Summary* s = summary_of(t);
      if (s == nullptr || !s->summarized) return false;
    }
    return true;
  }

  /// Whether the call's fall-through is reachable at all.  Only provable
  /// when every candidate is summarized and none reaches a return.
  bool may_return(const std::vector<Addr>& targets) const {
    if (!all_summarized(targets)) return true;
    for (Addr t : targets) {
      if (summary_of(t)->returns) return true;
    }
    return false;
  }

  /// Caller state after a call returns.  With full candidate summaries the
  /// fall-through keeps every refinable register whose joined clobber bit
  /// is clear (the flat caller-saved wipe restricted to the actually
  /// clobbered set); otherwise the flat clobber applies.  `link` is the
  /// call's link register (ra for jal, rd for jalr).
  State call_fallthrough(const State& at_call, const std::vector<Addr>& targets,
                         Addr ret, u8 link) const {
    if (!all_summarized(targets)) return clobber_call(at_call);
    u32 clob = 0;
    for (Addr t : targets) clob |= summary_of(t)->clobbered;
    State next = at_call;
    const u32 refinable = refinable_mask();
    for (u8 r = 1; r < isa::kNumRegs; ++r) {
      const u32 bit = 1u << r;
      if ((refinable & bit) == 0) continue;  // ABI-preserved, as in flat mode
      if ((clob & bit) != 0) next[r] = AbsVal{};
    }
    // The call wrote the return address into `link`; candidates that
    // provably never touch it leave it holding that constant.
    if (link != 0 && (clob & (1u << link)) == 0) {
      next[link] = abs_const(from_u32(static_cast<u32>(ret)));
    }
    // Return-value binding: a v0/v1 the callees write folds to the join of
    // the summary return values, rebased into this caller's frame.
    for (const u8 v : {isa::kV0, isa::kV1}) {
      if ((clob & (1u << v)) == 0) continue;  // not written: kept above
      AbsVal joined;
      bool first = true;
      for (Addr t : targets) {
        const Summary* s = summary_of(t);
        const AbsVal rv = rebase(v == isa::kV0 ? s->ret_v0 : s->ret_v1,
                                 at_call[isa::kSp], at_call[isa::kGp]);
        joined = first ? rv : join(joined, rv, field_sensitive);
        first = false;
        if (joined.kind == Kind::kUnknown) break;
      }
      next[v] = joined;
    }
    next[0] = abs_const(0);
    return next;
  }

  u32 new_context(Addr entry, const ArgTuple& args, u32 depth, u32 rung,
                  i32 parent) {
    const size_t n = cfg.blocks.size();
    contexts.push_back(CtxInfo{entry, args, depth, rung, parent});
    in_state.emplace_back(n);
    has_state.emplace_back(n, false);
    visits.emplace_back(n, 0);
    queued.emplace_back(n, false);
    strikes.emplace_back(n);
    return static_cast<u32>(contexts.size() - 1);
  }

  /// Number of ancestor contexts (including ctx itself) already analyzing
  /// `entry` — the recursion rung of a call to `entry` made from ctx.
  u32 recursion_rung(u32 ctx, Addr entry) const {
    u32 rung = 0;
    for (i32 p = static_cast<i32>(ctx); p >= 0; p = contexts[p].parent) {
      if (contexts[p].entry == entry) rung += 1;
    }
    return rung;
  }

  /// Routes a call entry (direct call, or a spawn-bound thread root) into a
  /// per-(callee, argument-tuple) clone when the depth budget and memo
  /// cache allow, and into the joined context 0 otherwise.  The joined
  /// context is the context-insensitive state, so every fallback is sound
  /// by construction.  Field mode additionally clones *recursive* calls per
  /// recursion rung (abstract $sp depth) up to sp_depth, so each recursion
  /// level gets its own sp-relative envelope instead of one joined frame.
  void enter_call(u32 ctx, Addr entry, const State& s) {
    if (context_depth == 0) {
      propagate(ctx, entry, s);
      return;
    }
    const u32 rung = (field_sensitive && sp_depth > 0)
                         ? recursion_rung(ctx, entry)
                         : 0;
    const bool recursive = rung >= 1;
    const ArgTuple args = {s[isa::kA0], s[isa::kA1], s[isa::kA2], s[isa::kA3]};
    bool all_unknown = true;
    for (const AbsVal& a : args) {
      if (a.kind != Kind::kUnknown) all_unknown = false;
    }
    if (all_unknown && !recursive) {
      // No argument precision to preserve: the joined context *is* this
      // context (not a fallback).
      propagate(0, entry, s);
      return;
    }
    const CtxKey key{entry, args, recursive ? rung : 0};
    if (const auto it = context_index.find(key); it != context_index.end()) {
      propagate(it->second, entry, s);  // memo hit
      return;
    }
    const bool admit =
        recursive ? (rung <= sp_depth && contexts_cloned < max_context_clones)
                  : (contexts[ctx].depth < context_depth &&
                     contexts_cloned < max_context_clones);
    if (!admit) {
      context_fallbacks += 1;
      propagate(0, entry, s);
      return;
    }
    // Rung clones keep the parent's argument-tuple depth: recursion depth
    // is budgeted by sp_depth, not by context_depth.
    const u32 depth =
        recursive ? contexts[ctx].depth : contexts[ctx].depth + 1;
    const u32 c = new_context(entry, args, depth, recursive ? rung : 0,
                              static_cast<i32>(ctx));
    context_index.emplace(key, c);
    contexts_cloned += 1;
    if (recursive) sp_contexts += 1;
    propagate(c, entry, s);
  }

  void enqueue(u32 ctx, u32 index) {
    if (!queued[ctx][index]) {
      queued[ctx][index] = true;
      worklist.emplace_back(ctx, index);
    }
  }

  void propagate(u32 ctx, Addr target, const State& s) {
    if (infeasible(s)) return;
    if (!in_region(target)) {
      left_region = true;
      return;
    }
    const BasicBlock* b = cfg.block_at(target);
    if (b == nullptr || b->start != target) return;  // mid-block/out-of-text
    const u32 i = b->index;
    if (!has_state[ctx][i]) {
      in_state[ctx][i] = s;
      has_state[ctx][i] = true;
      enqueue(ctx, i);
      return;
    }
    State merged;
    for (u8 r = 0; r < isa::kNumRegs; ++r) {
      merged[r] = join(in_state[ctx][i][r], s[r], field_sensitive);
      // Induction filter: a residue grid born purely from joining dense or
      // singleton inputs is kept only when a recorded loop-carried step
      // explains it; otherwise it is two unrelated constants meeting at a
      // join point and the dense hull is the honest value.  Grids that
      // arrived through transfer (shift/mul) or an already-strided input
      // pass through untouched.
      if (field_sensitive && induction != nullptr && merged[r].stride >= 2 &&
          in_state[ctx][i][r].stride < 2 && s[r].stride < 2 &&
          !induction->explains(r, merged[r].stride)) {
        merged[r] = make(merged[r].kind, merged[r].lo, merged[r].hi, 1);
      }
    }
    merged[0] = abs_const(0);
    if (merged == in_state[ctx][i]) return;
    // Interprocedural mode widens only at join points (>= 2 in-edges):
    // every reachable CFG cycle contains one (a cycle needs an entry edge
    // from outside plus its in-cycle edge), so the fixpoint still
    // terminates, while single-predecessor loop-body blocks keep the
    // refined bounds flowing out of the header's branch instead of
    // re-widening them.  Flat mode keeps the PR 3 behavior: every
    // still-changing register goes straight to Unknown at the budget.
    const bool widen_here =
        visits[ctx][i] >= kMaxBlockVisits &&
        (!interprocedural || in_degree[i] >= 2);
    if (widen_here) {
      for (u8 r = 1; r < isa::kNumRegs; ++r) {
        if (merged[r] == in_state[ctx][i][r]) continue;
        u8& strike = strikes[ctx][i][r];
        const u8 max_strikes = static_cast<u8>(std::min<std::size_t>(
            200, 2 * (thresholds != nullptr ? thresholds->size() : 0) + 4));
        if (interprocedural && strike < max_strikes &&
            merged[r].kind != Kind::kUnknown &&
            merged[r].kind == in_state[ctx][i][r].kind) {
          // Kind-preserving threshold widening: every widening event jumps
          // the changing bound(s) to the nearest enclosing materializable
          // constant, climbing one rung of the threshold ladder at a time
          // (a bound that outgrows the largest threshold lands on the
          // domain limit); refine_edge re-narrows loop indices from their
          // branch bounds on the way back in.  Each event strictly moves a
          // bound within the finite threshold set, so at most
          // 2*|thresholds|+2 events fire per (block, register); the strike
          // cap is a defensive backstop on top of that.
          AbsVal w = merged[r];
          // Stride-preserving widening: jump the changing bound(s) to the
          // threshold, then realign onto the value's own residue grid —
          // lo moves down to the last on-grid point >= the threshold, hi up
          // to the first on-grid point <= it, so the widened set still
          // covers the merged set (lo' <= lo, hi' >= hi, both on-grid) and
          // a dense value (stride 1) reproduces the plain threshold jump.
          const i64 ws = std::max<i64>(w.stride, 1);
          if (w.lo != in_state[ctx][i][r].lo) {
            const i64 t = threshold_lo(w.lo);
            w.lo -= ((w.lo - t) / ws) * ws;
          }
          if (w.hi != in_state[ctx][i][r].hi) {
            const i64 t = threshold_hi(w.hi);
            w.hi = w.lo + ((t - w.lo) / ws) * ws;
          }
          merged[r] = make(w.kind, w.lo, w.hi, w.stride);
        } else {
          merged[r] = AbsVal{};
        }
        if (strike < max_strikes) strike += 1;
      }
      if (merged == in_state[ctx][i]) return;
    }
    in_state[ctx][i] = merged;
    enqueue(ctx, i);
  }

  void run(Addr root, const State& root_in) {
    const size_t n = cfg.blocks.size();
    contexts.clear();
    context_index.clear();
    contexts_cloned = 0;
    context_fallbacks = 0;
    spawn_contexts = 0;
    sp_contexts = 0;
    in_state.clear();
    has_state.clear();
    visits.clear();
    queued.clear();
    strikes.clear();
    contexts.push_back(CtxInfo{});  // the joined context 0
    in_state.emplace_back(n);
    has_state.emplace_back(n, false);
    visits.emplace_back(n, 0);
    queued.emplace_back(n, false);
    strikes.emplace_back(n);
    in_degree.assign(n, 0);
    left_region = false;

    // In-edge counts feed the widening criterion.  This mirrors step()'s
    // propagation targets (over-counting is harmless — it only adds
    // widening points).
    auto bump = [&](Addr a) {
      const BasicBlock* b = cfg.block_at(a);
      if (b != nullptr && b->start == a) in_degree[b->index] += 1;
    };
    bump(root);
    for (Addr addr : cfg.address_taken) bump(addr);
    for (const BasicBlock& block : cfg.blocks) {
      if (block.exit == BlockExit::kReturn) continue;
      for (Addr succ : block.successors) bump(succ);
      const isa::Instr term =
          isa::decode(program.text_word(block.terminator_pc()));
      if (block.exit == BlockExit::kCall ||
          (block.exit == BlockExit::kIndirect && term.op == isa::Op::kJalr)) {
        bump(block.terminator_pc() + 4);
      }
    }

    propagate(0, root, root_in);
    if (region_hi == 0) {
      // Program-wide pass: address-taken targets enter execution without a
      // static edge (thread entries, jump tables) and are extra roots.
      for (Addr addr : cfg.address_taken) {
        State s = root_state();
        if (context_depth > 0 && spawn_bindings != nullptr) {
          const auto it = spawn_bindings->find(addr);
          if (it != spawn_bindings->end() &&
              it->second.kind != Kind::kUnknown) {
            // Spawn context: every unexplained entry to this address is a
            // thread create (gated in compute_footprint), so the root $a0
            // is the join of the create sites' $a1 arguments.  Enter via
            // the clone machinery so joined-context fallback entries don't
            // dilute the binding.
            s[isa::kA0] = it->second;
            spawn_contexts += 1;
            enter_call(0, addr, s);
            continue;
          }
        }
        propagate(0, addr, s);
      }
    }
    while (!worklist.empty()) {
      const auto [c, i] = worklist.front();
      worklist.pop_front();
      queued[c][i] = false;
      step(c, cfg.blocks[i]);
    }
  }

  void step(u32 ctx, const BasicBlock& block) {
    visits[ctx][block.index] += 1;
    State out = in_state[ctx][block.index];
    for (Addr pc = block.start; pc + 4 < block.end; pc += 4) {
      transfer(isa::decode(program.text_word(pc)), out, field_sensitive);
    }
    const isa::Instr term = isa::decode(program.text_word(block.terminator_pc()));

    switch (block.exit) {
      case BlockExit::kFallThrough: {
        transfer(term, out, field_sensitive);
        propagate(ctx, block.end, out);
        break;
      }
      case BlockExit::kBranch: {
        const Addr target =
            block.terminator_pc() + 4 + (static_cast<Addr>(term.imm) << 2);
        const Addr fall = block.end;
        for (Addr succ : block.successors) {
          State edge = out;
          if (target != fall) refine_edge(term, /*taken=*/succ == target, edge);
          propagate(ctx, succ, edge);
        }
        break;
      }
      case BlockExit::kJump: {
        for (Addr succ : block.successors) propagate(ctx, succ, out);
        break;
      }
      case BlockExit::kCall: {
        const Addr ret = block.terminator_pc() + 4;
        if (enter_callees) {
          // Into the callee with the return address bound — per-context
          // clone when the argument tuple and budgets allow.
          State callee = out;
          callee[isa::kRa] = abs_const(from_u32(static_cast<u32>(ret)));
          for (Addr succ : block.successors) enter_call(ctx, succ, callee);
        }
        // ...and across the call.  Candidates proven to never reach a
        // return have no fall-through at all.
        if (may_return(block.successors)) {
          propagate(ctx, ret,
                    call_fallthrough(out, block.successors, ret, isa::kRa));
        }
        break;
      }
      case BlockExit::kIndirect: {
        if (term.op == isa::Op::kJalr) {
          const Addr ret = block.terminator_pc() + 4;
          if (enter_callees) {
            State callee = out;
            callee[isa::kRa] = AbsVal{};
            callee[term.rd] = abs_const(from_u32(static_cast<u32>(ret)));
            // Indirect calls never clone: the candidate set is a joined
            // guess already, so the callee enters the joined context.
            for (Addr succ : block.successors) {
              if (context_depth > 0) context_fallbacks += 1;
              propagate(0, succ, callee);
            }
          }
          if (may_return(block.successors)) {
            propagate(ctx, ret,
                      call_fallthrough(out, block.successors, ret, term.rd));
          }
        } else {
          // Computed jump (jr non-ra).  Unresolved: in summary mode the
          // function's control can go anywhere — it cannot be summarized.
          if (block.successors.empty() && region_hi != 0) left_region = true;
          for (Addr succ : block.successors) propagate(ctx, succ, out);
        }
        break;
      }
      case BlockExit::kReturn: {
        // Return edges are modeled at the call site (the kCall
        // fall-through), not here: propagating the callee's exit state to
        // every return site would mix unrelated call chains.
        break;
      }
      case BlockExit::kSyscall: {
        // The CFG keeps a fall-through edge after every syscall, but a v0
        // pinned to a no-return syscall (1 = exit, 7 = thread-exit) proves
        // the edge infeasible — following it would seed the next function's
        // entry with the exiting caller's junk state.  Pruned only in
        // context mode so depth 0 stays bit-for-bit the historical pass.
        if (context_depth > 0 && out[isa::kV0].kind == Kind::kAbs &&
            out[isa::kV0].lo == out[isa::kV0].hi &&
            (out[isa::kV0].lo == 1 || out[isa::kV0].lo == 7)) {
          break;
        }
        State next = out;
        next[isa::kV0] = AbsVal{};
        next[isa::kV1] = AbsVal{};
        for (Addr succ : block.successors) propagate(ctx, succ, next);
        break;
      }
    }
  }
};

/// Computes one function's parametric summary against the current summary
/// map (Gauss-Seidel: callee entries may hold this round's values already).
Summary summarize_function(const isa::Program& program,
                           const ControlFlowGraph& cfg, Addr lo, Addr hi,
                           const SummaryMap& summaries,
                           const std::vector<i64>& thresholds, bool field,
                           const InductionSteps* induction) {
  Summary sum;
  sum.entry = lo;

  FixpointPass pass{program, cfg};
  pass.interprocedural = true;
  pass.summaries = &summaries;
  pass.region_lo = lo;
  pass.region_hi = hi;
  pass.enter_callees = false;
  pass.thresholds = &thresholds;
  pass.field_sensitive = field;
  pass.induction = induction;
  pass.run(lo, root_state());

  const BasicBlock* entry_block = cfg.block_at(lo);
  const bool entry_ok = entry_block != nullptr && entry_block->start == lo &&
                        pass.has_state[0][entry_block->index];
  if (pass.left_region || !entry_ok) {
    sum.summarized = false;  // callers fall back to the flat call model
    return sum;
  }
  sum.summarized = true;

  // Syntactic clobber mask over the whole region, independent of local
  // reachability: any register the region can write counts as clobbered
  // unless proven restored below.
  for (const BasicBlock& block : cfg.blocks) {
    if (block.start < lo || block.start >= hi) continue;
    for (Addr pc = block.start; pc < block.end; pc += 4) {
      sum.clobbered |= write_mask(isa::decode(program.text_word(pc)));
    }
  }

  const u32 cs_mask = caller_saved_mask();
  bool sp_restored = true;
  bool gp_restored = true;
  bool first_return = true;

  auto instantiate_envelope = [&](bool has, i64 elo, i64 ehi,
                                  const AbsVal& base) {
    if (!has) return;
    if (base.kind == Kind::kUnknown) {
      sum.unknown += 1;
      return;
    }
    const i64 rlo = base.lo + elo;
    const i64 rhi = base.hi + ehi;
    if (rhi - rlo > kMaxSpanBytes || rlo < kMinVal || rhi > kMaxVal ||
        (base.kind == Kind::kAbs && rlo < 0)) {
      sum.unknown += 1;
      return;
    }
    switch (base.kind) {
      case Kind::kAbs:
        add_page_range(sum.pages, static_cast<Addr>(rlo), static_cast<Addr>(rhi));
        break;
      case Kind::kSp:
        record_envelope(sum.has_sp, sum.sp_lo, sum.sp_hi, rlo, rhi);
        break;
      case Kind::kGp:
        record_envelope(sum.has_gp, sum.gp_lo, sum.gp_hi, rlo, rhi);
        break;
      default:
        break;
    }
  };

  for (const BasicBlock& block : cfg.blocks) {
    if (block.start < lo || block.start >= hi) continue;
    if (!pass.has_state[0][block.index]) continue;  // unreached from the entry
    State s = pass.in_state[0][block.index];
    for (Addr pc = block.start; pc < block.end; pc += 4) {
      const isa::Instr in = isa::decode(program.text_word(pc));
      if (is_load(in.op) || is_store(in.op)) {
        const SiteRange r = classify_site(s[in.rs], in.imm, access_size(in.op));
        switch (r.base) {
          case AddressBase::kAbsolute:
            add_page_range_strided(sum.pages, static_cast<Addr>(r.lo),
                                   static_cast<Addr>(r.hi), r.stride, r.size);
            if (is_store(in.op)) {
              add_page_range_strided(sum.store_pages, static_cast<Addr>(r.lo),
                                     static_cast<Addr>(r.hi), r.stride, r.size);
            }
            break;
          case AddressBase::kStack:
            record_envelope(sum.has_sp, sum.sp_lo, sum.sp_hi, r.lo, r.hi);
            break;
          case AddressBase::kGlobal:
            record_envelope(sum.has_gp, sum.gp_lo, sum.gp_hi, r.lo, r.hi);
            break;
          default:
            sum.unknown += 1;
            break;
        }
      }
      if (pc + 4 < block.end) transfer(in, s, field);
    }
    // `s` is now the state before the terminator (terminators have no
    // register transfer of their own).
    const isa::Instr term = isa::decode(program.text_word(block.terminator_pc()));
    const bool is_call =
        block.exit == BlockExit::kCall ||
        (block.exit == BlockExit::kIndirect && term.op == isa::Op::kJalr);
    if (is_call) {
      if (block.successors.empty()) {
        // Unresolved indirect call: flat model (full caller-saved clobber,
        // footprint unknown, assumed to return).
        sum.unknown += 1;
        sum.clobbered |= cs_mask;
      }
      for (Addr t : block.successors) {
        const auto it = summaries.find(t);
        const Summary* c = (it == summaries.end()) ? nullptr : &it->second;
        if (c == nullptr || !c->summarized) {
          sum.unknown += 1;
          sum.clobbered |= cs_mask;
          continue;
        }
        // Instantiate: pages carry over, envelopes rebase by this call
        // site's sp/gp, unknown contributions accumulate, clobbers are
        // transitive.
        sum.clobbered |= c->clobbered;
        sum.unknown += c->unknown;
        sum.pages.insert(c->pages.begin(), c->pages.end());
        sum.store_pages.insert(c->store_pages.begin(), c->store_pages.end());
        instantiate_envelope(c->has_sp, c->sp_lo, c->sp_hi, s[isa::kSp]);
        instantiate_envelope(c->has_gp, c->gp_lo, c->gp_hi, s[isa::kGp]);
      }
    }
    if (block.exit == BlockExit::kReturn) {
      sum.returns = true;
      if (!(s[isa::kSp] == make(Kind::kSp, 0, 0))) sp_restored = false;
      if (!(s[isa::kGp] == make(Kind::kGp, 0, 0))) gp_restored = false;
      sum.ret_v0 =
          first_return ? s[isa::kV0] : join(sum.ret_v0, s[isa::kV0], field);
      sum.ret_v1 =
          first_return ? s[isa::kV1] : join(sum.ret_v1, s[isa::kV1], field);
      first_return = false;
    }
  }

  // Arithmetic restore proof: sp/gp bits clear only when every reachable
  // return leaves them exactly at their entry values.
  if (sum.returns && sp_restored) sum.clobbered &= ~(1u << isa::kSp);
  if (sum.returns && gp_restored) sum.clobbered &= ~(1u << isa::kGp);
  if (!sum.returns) {
    sum.ret_v0 = AbsVal{};
    sum.ret_v1 = AbsVal{};
  }
  // Saturate the unknown-contribution count: a recursive function feeds its
  // own count back through the self-call and would otherwise grow it by one
  // every fixpoint round, never converging.  The count is diagnostic (the
  // page/envelope/clobber components carry the soundness); capping it keeps
  // the summary monotone AND bounded.
  constexpr u32 kMaxSummaryUnknown = 8;
  sum.unknown = std::min(sum.unknown, kMaxSummaryUnknown);
  return sum;
}

/// Bottom-up fixpoint over the call graph.  Bottom-initialized summaries
/// (touch nothing, return nowhere) iterate Gauss-Seidel until stable; the
/// summary components grow monotonically except envelopes and return
/// values under recursion (a self-call rebasing its own frame grows them
/// every round), which a small widening ladder drops after a few moves.
SummaryMap compute_summaries(const isa::Program& program,
                             const ControlFlowGraph& cfg,
                             const std::set<Addr>& entries,
                             const std::vector<i64>& thresholds, bool field,
                             const InductionSteps* induction) {
  SummaryMap summaries;
  struct Region {
    Addr lo;
    Addr hi;
  };
  std::vector<Region> regions;
  Addr text_end = 0;
  for (const BasicBlock& b : cfg.blocks) text_end = std::max(text_end, b.end);
  const std::vector<Addr> sorted(entries.begin(), entries.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    const Addr rlo = sorted[i];
    const Addr rhi = (i + 1 < sorted.size()) ? sorted[i + 1] : text_end;
    if (rlo >= rhi) continue;  // entry outside the decoded text
    regions.push_back(Region{rlo, rhi});
    Summary bottom;
    bottom.entry = rlo;
    bottom.summarized = true;
    summaries.emplace(rlo, std::move(bottom));
  }

  constexpr u32 kMaxComponentMoves = 3;
  std::map<Addr, u32> sp_moves;
  std::map<Addr, u32> gp_moves;
  std::map<Addr, u32> ret_moves;
  std::set<Addr> sp_dropped;
  std::set<Addr> gp_dropped;
  std::set<Addr> ret_dropped;
  // A summary that keeps changing after its envelope/return components were
  // already dropped is feeding on itself through a recursion cycle (e.g. its
  // unknown-site count grows by its own previous value every round).  Pin
  // such a function to unsummarized — callers fall back to the flat call
  // model for it — instead of letting it drag the whole map to the global
  // bail-out below.
  // Generous: every component is individually bounded (monotone masks and
  // page sets, ladder-dropped envelopes, the saturated unknown count), so a
  // converging summary moves at most a few dozen times; only genuine
  // divergence can exceed this.
  const u32 max_summary_moves = static_cast<u32>(regions.size()) + 48;
  std::map<Addr, u32> total_moves;
  std::set<Addr> force_flat;

  const size_t rounds_cap = 3 * regions.size() + 8;
  bool stable = false;
  for (size_t round = 0; round < rounds_cap && !stable; ++round) {
    stable = true;
    // Helpers usually sit after their callers, so reverse address order
    // makes the first sweep roughly bottom-up.
    for (auto it = regions.rbegin(); it != regions.rend(); ++it) {
      Summary& cur = summaries.at(it->lo);
      if (force_flat.count(it->lo) != 0) continue;  // pinned unsummarized
      Summary next = summarize_function(program, cfg, it->lo, it->hi,
                                        summaries, thresholds, field, induction);
      if (next.summarized) {
        if (sp_dropped.count(it->lo) != 0 && next.has_sp) {
          next.has_sp = false;
          next.unknown += 1;
        }
        if (gp_dropped.count(it->lo) != 0 && next.has_gp) {
          next.has_gp = false;
          next.unknown += 1;
        }
        if (ret_dropped.count(it->lo) != 0) {
          next.ret_v0 = AbsVal{};
          next.ret_v1 = AbsVal{};
        }
        if (next.has_sp &&
            (!cur.has_sp || next.sp_lo != cur.sp_lo || next.sp_hi != cur.sp_hi)) {
          if (++sp_moves[it->lo] > kMaxComponentMoves) {
            sp_dropped.insert(it->lo);
            next.has_sp = false;
            next.unknown += 1;
          }
        }
        if (next.has_gp &&
            (!cur.has_gp || next.gp_lo != cur.gp_lo || next.gp_hi != cur.gp_hi)) {
          if (++gp_moves[it->lo] > kMaxComponentMoves) {
            gp_dropped.insert(it->lo);
            next.has_gp = false;
            next.unknown += 1;
          }
        }
        if (!(next.ret_v0 == cur.ret_v0) || !(next.ret_v1 == cur.ret_v1)) {
          if (++ret_moves[it->lo] > kMaxComponentMoves) {
            ret_dropped.insert(it->lo);
            next.ret_v0 = AbsVal{};
            next.ret_v1 = AbsVal{};
          }
        }
      }
      if (next != cur) {
        if (++total_moves[it->lo] > max_summary_moves) {
          force_flat.insert(it->lo);
          next = Summary{};
          next.entry = it->lo;
        }
        cur = next;
        stable = false;
      }
    }
  }
  if (!stable) {
    // The safety net should be unreachable (each component is monotone or
    // ladder-bounded), but if it ever trips, fall back to the flat model.
    for (auto& [entry, sum] : summaries) {
      sum = Summary{};
      sum.entry = entry;
    }
  }
  return summaries;
}

/// Scans a finished pass for thread-create syscall sites (`$v0 == 6` at the
/// syscall, the guest OS `Sys::kThreadCreate` code) and joins their `$a1`
/// argument per spawn target.  Sets gate_ok = false — the caller then keeps
/// the unbound run — when any reachable construct could enter an
/// address-taken root with a state the harvest cannot account for: an
/// unresolved indirect jump/call (could land anywhere with any state), a
/// syscall whose `$v0` is not a statically known constant (could be a
/// create the harvest misattributes), or a create whose target `$a0` is not
/// a known address-taken constant.
std::map<Addr, AbsVal> harvest_spawn_bindings(const FixpointPass& pass,
                                              const isa::Program& program,
                                              const ControlFlowGraph& cfg,
                                              bool& gate_ok) {
  std::map<Addr, AbsVal> binding;
  gate_ok = true;
  for (const BasicBlock& block : cfg.blocks) {
    bool live = false;
    for (size_t c = 0; c < pass.contexts.size(); ++c) {
      if (pass.has_state[c][block.index]) {
        live = true;
        break;
      }
    }
    if (!live) continue;
    if (block.exit == BlockExit::kIndirect && !block.indirect_resolved) {
      gate_ok = false;
      return {};
    }
    if (block.exit != BlockExit::kSyscall) continue;
    for (size_t c = 0; c < pass.contexts.size(); ++c) {
      if (!pass.has_state[c][block.index]) continue;
      State s = pass.in_state[c][block.index];
      for (Addr pc = block.start; pc + 4 < block.end; pc += 4) {
        transfer(isa::decode(program.text_word(pc)), s, pass.field_sensitive);
      }
      const AbsVal v0 = s[isa::kV0];
      if (!(v0.kind == Kind::kAbs && is_singleton(v0))) {
        gate_ok = false;
        return {};
      }
      if (v0.lo != 6) continue;  // not a thread create
      const AbsVal a0 = s[isa::kA0];
      if (!(a0.kind == Kind::kAbs && is_singleton(a0) && a0.lo >= 0 &&
            cfg.address_taken.count(static_cast<Addr>(a0.lo)) != 0)) {
        gate_ok = false;
        return {};
      }
      const Addr target = static_cast<Addr>(a0.lo);
      const auto it = binding.find(target);
      binding[target] = (it == binding.end())
                            ? s[isa::kA1]
                            : join(it->second, s[isa::kA1], pass.field_sensitive);
    }
  }
  return binding;
}

}  // namespace

std::vector<Addr> PageFootprint::checked_pcs() const {
  std::vector<Addr> pcs;
  for (const AccessSite& site : sites) {
    if (site.precision != AccessPrecision::kUnknown) pcs.push_back(site.pc);
  }
  std::sort(pcs.begin(), pcs.end());
  return pcs;
}

PageFootprint compute_footprint(const isa::Program& program,
                                const ControlFlowGraph& cfg,
                                const FootprintOptions& options) {
  PageFootprint fp;
  fp.interprocedural = options.interprocedural;
  if (cfg.blocks.empty()) return fp;

  // Function-entry candidates, as in the CFG's return-site inference.
  std::set<Addr> entries;
  entries.insert(program.entry);
  for (const CallEdge& call : cfg.calls) entries.insert(call.callee);
  for (Addr addr : cfg.address_taken) entries.insert(addr);
  auto function_of = [&](Addr pc) {
    auto it = entries.upper_bound(pc);
    return (it == entries.begin()) ? program.entry : *std::prev(it);
  };

  // --- Parametric per-function summaries (interprocedural mode). ------
  const bool field = options.field_sensitive;
  fp.field_sensitive = field;
  InductionSteps induction;
  if (field) induction = collect_induction(program, cfg);
  const InductionSteps* ind = field ? &induction : nullptr;
  SummaryMap summaries;
  std::vector<i64> thresholds;
  if (options.interprocedural) {
    thresholds = collect_thresholds(program, cfg);
    summaries = compute_summaries(program, cfg, entries, thresholds, field, ind);
  }

  // --- Program-wide fixpoint over block in-states.  Still enters callees
  // with the caller's context (which keeps argument-register precision
  // inside helpers) — per-(callee, argument-tuple) clones when
  // context_depth > 0; summaries refine what survives a call's
  // fall-through and whether the fall-through is reachable at all. ------
  const u32 effective_depth =
      options.interprocedural ? options.context_depth : 0;
  auto run_pass = [&](const std::map<Addr, AbsVal>* bindings) {
    auto p = std::make_unique<FixpointPass>(program, cfg);
    p->interprocedural = options.interprocedural;
    p->summaries = options.interprocedural ? &summaries : nullptr;
    p->enter_callees = true;
    if (options.interprocedural) p->thresholds = &thresholds;
    p->context_depth = effective_depth;
    p->spawn_bindings = bindings;
    p->field_sensitive = field;
    p->sp_depth = field ? options.sp_depth : 0;
    p->induction = ind;
    p->run(program.entry, root_state());
    return p;
  };

  // Probe run: context clones active, no spawn bindings yet.
  std::unique_ptr<FixpointPass> pass = run_pass(nullptr);

  // Spawn-context rounds: harvest thread-create argument bindings from the
  // probe, re-run with the thread roots' $a0 bound, and accept the bound
  // run only once the create arguments it observes are covered by the
  // binding it assumed (a post-fixpoint of the spawn semantics, hence
  // sound on its own).  A gate failure or an unstable ladder keeps the
  // unbound probe run.
  if (effective_depth > 0) {
    bool gate_ok = true;
    std::map<Addr, AbsVal> binding =
        harvest_spawn_bindings(*pass, program, cfg, gate_ok);
    bool any_bound = false;
    for (const auto& [addr, v] : binding) {
      (void)addr;
      if (v.kind != Kind::kUnknown) any_bound = true;
    }
    if (gate_ok && any_bound) {
      for (u32 round = 0; round < kMaxSpawnRounds; ++round) {
        std::unique_ptr<FixpointPass> bound = run_pass(&binding);
        bool gate2 = true;
        const std::map<Addr, AbsVal> observed =
            harvest_spawn_bindings(*bound, program, cfg, gate2);
        if (!gate2) break;  // keep the probe run
        bool stable = true;
        for (const auto& [addr, v] : observed) {
          const auto it = binding.find(addr);
          // A target absent from the assumption (or assumed Unknown) ran
          // with the plain Unknown-$a0 root: sound, nothing to re-check.
          if (it == binding.end() || it->second.kind == Kind::kUnknown) {
            continue;
          }
          const AbsVal widened = join(it->second, v, field);
          if (!(widened == it->second)) {
            stable = false;
            it->second = widened;
          }
        }
        if (stable) {
          pass = std::move(bound);
          break;
        }
      }
    }
  }
  fp.context_depth = effective_depth;
  fp.contexts_cloned = pass->contexts_cloned;
  fp.context_fallbacks = pass->context_fallbacks;
  fp.spawn_contexts = pass->spawn_contexts;
  fp.sp_contexts = pass->sp_contexts;

  // --- Collect access sites from reachable blocks. --------------------
  std::set<u32> pages;
  std::set<u32> store_pages;
  struct FnAcc {
    std::set<u32> pages;
    std::set<u32> store_pages;
    u32 exact = 0, over = 0, unknown = 0;
  };
  std::map<Addr, FnAcc> fn_acc;
  std::vector<PageFootprint::SitePages> ctx_pages;

  const size_t nctx = pass->contexts.size();
  for (const BasicBlock& block : cfg.blocks) {
    if (!block.reachable) continue;
    // Every execution entering this block is covered by the states of the
    // contexts that have one.  No state in any context means every edge
    // into the block was proven infeasible (the roots cover the entry and
    // all address-taken targets), i.e. the block is dead code under the
    // concrete semantics too — its sites can never commit, so they
    // contribute nothing to the footprint.
    std::vector<State> states;
    for (size_t c = 0; c < nctx; ++c) {
      if (pass->has_state[c][block.index]) {
        states.push_back(pass->in_state[c][block.index]);
      }
    }
    if (states.empty()) continue;
    for (Addr pc = block.start; pc < block.end; pc += 4) {
      const isa::Instr in = isa::decode(program.text_word(pc));
      const bool load = is_load(in.op);
      const bool store = is_store(in.op);
      if (load || store) {
        AccessSite site;
        site.pc = pc;
        site.is_store = store;
        std::vector<SiteRange> ranges;
        ranges.reserve(states.size());
        bool any_unknown = false;
        for (const State& s : states) {
          const SiteRange r =
              classify_site(s[in.rs], in.imm, access_size(in.op));
          if (r.base == AddressBase::kUnknown) any_unknown = true;
          ranges.push_back(r);
        }
        if (!any_unknown) {
          // Merge the per-context ranges into the single-range hull the
          // site list carries, folding pages/envelopes per context range so
          // the global sets stay tight (the hull may span the gap between
          // disjoint per-context buffers).
          const AddressBase base0 = ranges[0].base;
          bool same_base = true;
          bool all_exact_same = true;
          i64 lo = ranges[0].lo;
          i64 hi = ranges[0].hi;
          for (const SiteRange& r : ranges) {
            if (r.base != base0) same_base = false;
            if (r.precision != AccessPrecision::kExact || r.lo != ranges[0].lo ||
                r.hi != ranges[0].hi) {
              all_exact_same = false;
            }
            lo = std::min(lo, r.lo);
            hi = std::max(hi, r.hi);
          }
          if (same_base) {
            site.base = base0;
            site.precision = all_exact_same ? AccessPrecision::kExact
                                            : AccessPrecision::kOver;
            site.lo = lo;
            site.hi = hi;
            // Merged residue grid across contexts: the gcd of every
            // context's stride and anchor distance (the same argument as
            // the abstract join) — exported when it is an actual grid.
            if (field) {
              i64 g = 0;
              for (const SiteRange& r : ranges) {
                g = std::gcd(g, r.stride);
                g = std::gcd(g, r.lo >= ranges[0].lo ? r.lo - ranges[0].lo
                                                     : ranges[0].lo - r.lo);
              }
              site.stride = g >= 2 ? g : 0;
            }
          } else {
            // Resolved in every context but the bases differ: the hull is
            // not expressible as one (base, range).  The site counts as
            // over-approximate and is checked through the per-pc page
            // table below (plus the runtime stack pages for the
            // stack-relative components).
            site.base = AddressBase::kUnknown;
            site.precision = AccessPrecision::kOver;
          }
          FnAcc& fn = fn_acc[function_of(pc)];
          std::set<u32> pc_page_set;
          bool expressible = true;  // per-pc table can carry every component
          for (const SiteRange& r : ranges) {
            switch (r.base) {
              case AddressBase::kAbsolute:
                add_page_range_strided(pages, static_cast<Addr>(r.lo),
                                       static_cast<Addr>(r.hi), r.stride,
                                       r.size);
                add_page_range_strided(fn.pages, static_cast<Addr>(r.lo),
                                       static_cast<Addr>(r.hi), r.stride,
                                       r.size);
                if (store) {
                  add_page_range_strided(store_pages, static_cast<Addr>(r.lo),
                                         static_cast<Addr>(r.hi), r.stride,
                                         r.size);
                  add_page_range_strided(fn.store_pages,
                                         static_cast<Addr>(r.lo),
                                         static_cast<Addr>(r.hi), r.stride,
                                         r.size);
                }
                add_page_range_strided(pc_page_set, static_cast<Addr>(r.lo),
                                       static_cast<Addr>(r.hi), r.stride,
                                       r.size);
                break;
              case AddressBase::kStack:
                record_envelope(fp.has_sp_range, fp.sp_lo, fp.sp_hi, r.lo,
                                r.hi);
                // Covered per-pc by the runtime-registered stack pages.
                break;
              case AddressBase::kGlobal:
                record_envelope(fp.has_gp_range, fp.gp_lo, fp.gp_hi, r.lo,
                                r.hi);
                if (r.lo >= 0) {
                  // Folds at the initial gp = 0, the loader convention.
                  add_page_range_strided(pc_page_set, static_cast<Addr>(r.lo),
                                         static_cast<Addr>(r.hi), r.stride,
                                         r.size);
                } else {
                  expressible = false;
                }
                break;
              default:
                break;
            }
          }
          // Emit a per-pc entry when it is strictly tighter than what the
          // global check can see: mixed-base sites (whose hull the site
          // list cannot carry) and same-base sites whose per-context page
          // union has gaps the contiguous hull would whitelist.
          if (expressible && !pc_page_set.empty()) {
            bool want = !same_base;
            if (same_base && lo >= 0 &&
                (base0 == AddressBase::kAbsolute ||
                 base0 == AddressBase::kGlobal)) {
              const u64 hull_pages =
                  static_cast<u64>(mem::page_of(static_cast<Addr>(hi))) -
                  mem::page_of(static_cast<Addr>(lo)) + 1;
              want = pc_page_set.size() < hull_pages;
            }
            if (want) {
              PageFootprint::SitePages entry;
              entry.pc = pc;
              entry.is_store = store;
              entry.pages.assign(pc_page_set.begin(), pc_page_set.end());
              ctx_pages.push_back(std::move(entry));
            }
          }
        }

        FnAcc& fn = fn_acc[function_of(pc)];
        switch (site.precision) {
          case AccessPrecision::kExact:
            fp.exact_sites += 1;
            fn.exact += 1;
            break;
          case AccessPrecision::kOver:
            fp.over_sites += 1;
            fn.over += 1;
            break;
          case AccessPrecision::kUnknown:
            fp.unknown_sites += 1;
            fn.unknown += 1;
            break;
        }
        fp.sites.push_back(site);
      }
      if (pc + 4 < block.end) {
        for (State& s : states) transfer(in, s, field);
      }
    }
  }

  fp.pages.assign(pages.begin(), pages.end());
  fp.store_pages.assign(store_pages.begin(), store_pages.end());
  for (auto& [entry, acc] : fn_acc) {
    FunctionFootprint fn;
    fn.entry = entry;
    fn.pages.assign(acc.pages.begin(), acc.pages.end());
    fn.store_pages.assign(acc.store_pages.begin(), acc.store_pages.end());
    fn.exact_sites = acc.exact;
    fn.over_sites = acc.over;
    fn.unknown_sites = acc.unknown;
    fp.functions.push_back(std::move(fn));
  }
  std::sort(fp.sites.begin(), fp.sites.end(),
            [](const AccessSite& a, const AccessSite& b) { return a.pc < b.pc; });
  std::sort(ctx_pages.begin(), ctx_pages.end(),
            [](const PageFootprint::SitePages& a,
               const PageFootprint::SitePages& b) { return a.pc < b.pc; });
  fp.context_pages = std::move(ctx_pages);

  for (const auto& [entry, sum] : summaries) {
    FunctionSummary out;
    out.entry = entry;
    out.summarized = sum.summarized;
    out.clobbered_regs = sum.clobbered;
    out.returns = sum.returns;
    out.pages.assign(sum.pages.begin(), sum.pages.end());
    out.store_pages.assign(sum.store_pages.begin(), sum.store_pages.end());
    out.has_sp_range = sum.has_sp;
    out.sp_lo = sum.sp_lo;
    out.sp_hi = sum.sp_hi;
    out.has_gp_range = sum.has_gp;
    out.gp_lo = sum.gp_lo;
    out.gp_hi = sum.gp_hi;
    out.unknown_sites = sum.unknown;
    fp.summaries.push_back(std::move(out));
  }
  return fp;
}

}  // namespace rse::analysis
