#include "analysis/footprint.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <set>

#include "mem/main_memory.hpp"

namespace rse::analysis {
namespace {

// Register values are modeled as the signed-i32 reinterpretation of the
// 32-bit register, computed exactly in i64; any operation whose result
// leaves [-2^31, 2^31) would wrap at runtime and degrades to Unknown.  This
// matches the core: addresses stay below 0x8000'0000 (kDefaultStackTop
// guards the signed-compare boundary) and blt/bge compare as i32.
constexpr i64 kMinVal = -(i64{1} << 31);
constexpr i64 kMaxVal = (i64{1} << 31) - 1;

// A block whose in-state keeps changing past this many joins has its
// changing registers widened straight to Unknown, bounding the fixpoint.
constexpr u32 kMaxBlockVisits = 40;

// A resolved range wider than this is useless as a page prediction (it
// would whitelist the whole address space); treat the site as unresolved.
constexpr i64 kMaxSpanBytes = i64{1} << 20;

struct AbsVal {
  enum class Kind : u8 { kUnknown, kAbs, kSp, kGp };
  Kind kind = Kind::kUnknown;
  i64 lo = 0;
  i64 hi = 0;

  bool operator==(const AbsVal& o) const {
    if (kind != o.kind) return false;
    if (kind == Kind::kUnknown) return true;
    return lo == o.lo && hi == o.hi;
  }
};

using Kind = AbsVal::Kind;

AbsVal make(Kind kind, i64 lo, i64 hi) {
  if (kind == Kind::kUnknown || lo > hi || lo < kMinVal || hi > kMaxVal) {
    return AbsVal{};
  }
  return AbsVal{kind, lo, hi};
}

AbsVal abs_const(i64 v) { return make(Kind::kAbs, v, v); }

bool is_singleton(const AbsVal& v) {
  return v.kind != Kind::kUnknown && v.lo == v.hi;
}

AbsVal join(const AbsVal& a, const AbsVal& b) {
  if (a.kind == Kind::kUnknown || b.kind == Kind::kUnknown || a.kind != b.kind) {
    return AbsVal{};
  }
  return make(a.kind, std::min(a.lo, b.lo), std::max(a.hi, b.hi));
}

using State = std::array<AbsVal, isa::kNumRegs>;

/// Root state: everything Unknown except the architectural invariants.
State root_state() {
  State s{};
  s[0] = abs_const(0);
  s[isa::kSp] = make(Kind::kSp, 0, 0);
  s[isa::kGp] = make(Kind::kGp, 0, 0);
  return s;
}

/// The i32 reinterpretation of an exact u32 bit pattern.
i64 from_u32(u32 v) { return static_cast<i64>(static_cast<i32>(v)); }

void set_dest(State& s, u8 reg, const AbsVal& v) {
  if (reg != 0) s[reg] = v;
}

/// Transfer function for one non-control instruction (control effects —
/// link registers, clobbers, refinement — are handled on edges).
void transfer(const isa::Instr& in, State& s) {
  using isa::Op;
  const AbsVal rs = s[in.rs];
  const AbsVal rt = s[in.rt];
  const u32 uimm = static_cast<u32>(in.imm) & 0xFFFFu;
  const i64 imm = in.imm;

  auto add_vals = [](const AbsVal& a, const AbsVal& b) {
    if (a.kind == Kind::kAbs && b.kind == Kind::kAbs) {
      return make(Kind::kAbs, a.lo + b.lo, a.hi + b.hi);
    }
    if (a.kind != Kind::kUnknown && b.kind == Kind::kAbs) {
      return make(a.kind, a.lo + b.lo, a.hi + b.hi);
    }
    if (a.kind == Kind::kAbs && b.kind != Kind::kUnknown) {
      return make(b.kind, a.lo + b.lo, a.hi + b.hi);
    }
    return AbsVal{};
  };

  switch (in.op) {
    case Op::kAdd: set_dest(s, in.rd, add_vals(rs, rt)); break;
    case Op::kAddi: set_dest(s, in.rt, add_vals(rs, abs_const(imm))); break;
    case Op::kSub:
      if (rt.kind == Kind::kAbs && rs.kind != Kind::kUnknown) {
        // Abs-Abs stays Abs; Sp-Abs / Gp-Abs keep the base.
        set_dest(s, in.rd, make(rs.kind, rs.lo - rt.hi, rs.hi - rt.lo));
      } else if (rs.kind == rt.kind && rs.kind != Kind::kUnknown) {
        // Same-base difference (Sp-Sp, Gp-Gp): the base cancels.
        set_dest(s, in.rd, make(Kind::kAbs, rs.lo - rt.hi, rs.hi - rt.lo));
      } else {
        set_dest(s, in.rd, AbsVal{});
      }
      break;
    case Op::kLui:
      set_dest(s, in.rt, abs_const(from_u32(uimm << 16)));
      break;
    case Op::kOri:
      if (is_singleton(rs) && rs.kind == Kind::kAbs) {
        set_dest(s, in.rt, abs_const(from_u32(static_cast<u32>(rs.lo) | uimm)));
      } else if (uimm == 0) {
        set_dest(s, in.rt, rs);
      } else {
        set_dest(s, in.rt, AbsVal{});
      }
      break;
    case Op::kAndi:
      // rs & uimm lands in [0, uimm] whatever rs is (uimm is 16-bit).
      if (is_singleton(rs) && rs.kind == Kind::kAbs) {
        set_dest(s, in.rt, abs_const(from_u32(static_cast<u32>(rs.lo) & uimm)));
      } else {
        set_dest(s, in.rt, make(Kind::kAbs, 0, static_cast<i64>(uimm)));
      }
      break;
    case Op::kXori:
      if (is_singleton(rs) && rs.kind == Kind::kAbs) {
        set_dest(s, in.rt, abs_const(from_u32(static_cast<u32>(rs.lo) ^ uimm)));
      } else {
        set_dest(s, in.rt, AbsVal{});
      }
      break;
    case Op::kAnd:
      if (is_singleton(rs) && is_singleton(rt) && rs.kind == Kind::kAbs &&
          rt.kind == Kind::kAbs) {
        set_dest(s, in.rd,
                 abs_const(from_u32(static_cast<u32>(rs.lo) & static_cast<u32>(rt.lo))));
      } else if (rt.kind == Kind::kAbs && rt.lo == rt.hi && rt.lo >= 0) {
        set_dest(s, in.rd, make(Kind::kAbs, 0, rt.lo));  // mask bound
      } else if (rs.kind == Kind::kAbs && rs.lo == rs.hi && rs.lo >= 0) {
        set_dest(s, in.rd, make(Kind::kAbs, 0, rs.lo));
      } else {
        set_dest(s, in.rd, AbsVal{});
      }
      break;
    case Op::kOr:
      if (is_singleton(rs) && is_singleton(rt) && rs.kind == Kind::kAbs &&
          rt.kind == Kind::kAbs) {
        set_dest(s, in.rd,
                 abs_const(from_u32(static_cast<u32>(rs.lo) | static_cast<u32>(rt.lo))));
      } else if (rt.kind == Kind::kAbs && rt.lo == 0 && rt.hi == 0) {
        set_dest(s, in.rd, rs);  // or rd, rs, r0 — the `move` idiom
      } else if (rs.kind == Kind::kAbs && rs.lo == 0 && rs.hi == 0) {
        set_dest(s, in.rd, rt);
      } else {
        set_dest(s, in.rd, AbsVal{});
      }
      break;
    case Op::kXor:
    case Op::kNor:
      if (is_singleton(rs) && is_singleton(rt) && rs.kind == Kind::kAbs &&
          rt.kind == Kind::kAbs) {
        const u32 a = static_cast<u32>(rs.lo);
        const u32 b = static_cast<u32>(rt.lo);
        set_dest(s, in.rd, abs_const(from_u32(in.op == Op::kXor ? (a ^ b) : ~(a | b))));
      } else {
        set_dest(s, in.rd, AbsVal{});
      }
      break;
    case Op::kSll:
      if (rt.kind == Kind::kAbs && rt.lo >= 0) {
        set_dest(s, in.rd,
                 make(Kind::kAbs, rt.lo << in.shamt, rt.hi << in.shamt));
      } else {
        set_dest(s, in.rd, AbsVal{});
      }
      break;
    case Op::kSrl:
    case Op::kSra:
      if (rt.kind == Kind::kAbs && rt.lo >= 0) {
        set_dest(s, in.rd,
                 make(Kind::kAbs, rt.lo >> in.shamt, rt.hi >> in.shamt));
      } else {
        set_dest(s, in.rd, AbsVal{});
      }
      break;
    case Op::kSlt:
    case Op::kSltu:
      set_dest(s, in.rd, make(Kind::kAbs, 0, 1));
      break;
    case Op::kSlti:
    case Op::kSltiu:
      set_dest(s, in.rt, make(Kind::kAbs, 0, 1));
      break;
    case Op::kMul:
      if (is_singleton(rs) && is_singleton(rt) && rs.kind == Kind::kAbs &&
          rt.kind == Kind::kAbs) {
        set_dest(s, in.rd, make(Kind::kAbs, rs.lo * rt.lo, rs.lo * rt.lo));
      } else if (rs.kind == Kind::kAbs && rt.kind == Kind::kAbs && rs.lo >= 0 &&
                 rt.lo >= 0) {
        set_dest(s, in.rd, make(Kind::kAbs, rs.lo * rt.lo, rs.hi * rt.hi));
      } else {
        set_dest(s, in.rd, AbsVal{});
      }
      break;
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
    case Op::kMulh:
    case Op::kDiv:
    case Op::kRem:
      set_dest(s, in.rd, AbsVal{});
      break;
    case Op::kLw:
    case Op::kLh:
    case Op::kLhu:
    case Op::kLb:
    case Op::kLbu:
      set_dest(s, in.rt, AbsVal{});
      break;
    default:
      // Stores, branches, jumps, chk, syscall: no GPR effect here (link
      // registers and syscall clobbers are applied on the outgoing edge).
      break;
  }
  s[0] = abs_const(0);
}

/// Caller-saved registers (clobbered across a call's fall-through edge).
bool caller_saved(u8 reg) {
  if (reg >= 1 && reg <= 15) return true;            // at, v0-v1, a0-a3, t0-t7
  if (reg >= 24 && reg <= 27) return true;           // t8-t9, k0-k1
  return reg == isa::kRa;
}

State clobber_call(const State& in) {
  State out = in;
  for (u8 r = 0; r < isa::kNumRegs; ++r) {
    if (caller_saved(r)) out[r] = AbsVal{};
  }
  out[0] = abs_const(0);
  return out;
}

/// Range refinement along a conditional-branch edge.  Only same-kind
/// operands are comparable (Abs vs Abs, or same-base offsets where the base
/// cancels); unsigned branches are treated as signed only when both ranges
/// are provably non-negative (no wrap across the sign boundary).
void refine_edge(const isa::Instr& in, bool taken, State& s) {
  using isa::Op;
  AbsVal a = s[in.rs];
  AbsVal b = s[in.rt];
  if (a.kind == Kind::kUnknown || b.kind == Kind::kUnknown || a.kind != b.kind) {
    return;
  }
  const bool unsigned_cmp = in.op == Op::kBltu || in.op == Op::kBgeu;
  if (unsigned_cmp && (a.lo < 0 || b.lo < 0)) return;

  // Normalize to one of: a < b holds, or a >= b holds, or ==, or !=.
  enum class Rel { kLt, kGe, kEq, kNe, kNone };
  Rel rel = Rel::kNone;
  switch (in.op) {
    case Op::kBlt:
    case Op::kBltu:
      rel = taken ? Rel::kLt : Rel::kGe;
      break;
    case Op::kBge:
    case Op::kBgeu:
      rel = taken ? Rel::kGe : Rel::kLt;
      break;
    case Op::kBeq:
      rel = taken ? Rel::kEq : Rel::kNe;
      break;
    case Op::kBne:
      rel = taken ? Rel::kNe : Rel::kEq;
      break;
    default:
      return;
  }

  switch (rel) {
    case Rel::kLt:  // a < b
      a.hi = std::min(a.hi, b.hi - 1);
      b.lo = std::max(b.lo, a.lo + 1);
      break;
    case Rel::kGe:  // a >= b
      a.lo = std::max(a.lo, b.lo);
      b.hi = std::min(b.hi, a.hi);
      break;
    case Rel::kEq: {  // intersect
      const i64 lo = std::max(a.lo, b.lo);
      const i64 hi = std::min(a.hi, b.hi);
      a.lo = b.lo = lo;
      a.hi = b.hi = hi;
      break;
    }
    case Rel::kNe:  // shave a singleton off a matching endpoint
      if (is_singleton(b)) {
        if (a.lo == b.lo) a.lo += 1;
        if (a.hi == b.lo) a.hi -= 1;
      }
      if (is_singleton(a)) {
        if (b.lo == a.lo) b.lo += 1;
        if (b.hi == a.lo) b.hi -= 1;
      }
      break;
    case Rel::kNone:
      return;
  }
  // An empty refined range marks the edge statically infeasible; the caller
  // detects it via the sentinel and skips propagation.
  s[in.rs] = (a.lo > a.hi) ? AbsVal{Kind::kAbs, 1, 0} : make(a.kind, a.lo, a.hi);
  s[in.rt] = (b.lo > b.hi) ? AbsVal{Kind::kAbs, 1, 0} : make(b.kind, b.lo, b.hi);
  s[0] = abs_const(0);
}

bool infeasible(const State& s) {
  for (const AbsVal& v : s) {
    if (v.kind != Kind::kUnknown && v.lo > v.hi) return true;
  }
  return false;
}

u32 access_size(isa::Op op) {
  using isa::Op;
  switch (op) {
    case Op::kLw:
    case Op::kSw:
      return 4;
    case Op::kLh:
    case Op::kLhu:
    case Op::kSh:
      return 2;
    default:
      return 1;
  }
}

bool is_load(isa::Op op) {
  using isa::Op;
  return op == Op::kLw || op == Op::kLh || op == Op::kLhu || op == Op::kLb ||
         op == Op::kLbu;
}

bool is_store(isa::Op op) {
  using isa::Op;
  return op == Op::kSw || op == Op::kSh || op == Op::kSb;
}

void add_page_range(std::set<u32>& pages, Addr lo, Addr hi) {
  for (u32 page = mem::page_of(lo); page <= mem::page_of(hi); ++page) {
    pages.insert(page);
  }
}

}  // namespace

std::vector<Addr> PageFootprint::checked_pcs() const {
  std::vector<Addr> pcs;
  for (const AccessSite& site : sites) {
    if (site.precision != AccessPrecision::kUnknown) pcs.push_back(site.pc);
  }
  std::sort(pcs.begin(), pcs.end());
  return pcs;
}

PageFootprint compute_footprint(const isa::Program& program,
                                const ControlFlowGraph& cfg) {
  PageFootprint fp;
  if (cfg.blocks.empty()) return fp;

  // --- Fixpoint over block in-states. ---------------------------------
  const size_t n = cfg.blocks.size();
  std::vector<State> in_state(n);
  std::vector<bool> has_state(n, false);
  std::vector<u32> visits(n, 0);
  std::deque<u32> worklist;
  std::vector<bool> queued(n, false);

  auto block_index_at = [&](Addr pc) -> const BasicBlock* {
    const BasicBlock* b = cfg.block_at(pc);
    return (b != nullptr && b->start == pc) ? b : nullptr;
  };

  auto enqueue = [&](u32 index) {
    if (!queued[index]) {
      queued[index] = true;
      worklist.push_back(index);
    }
  };

  auto propagate = [&](Addr target, const State& s) {
    const BasicBlock* b = block_index_at(target);
    if (b == nullptr) return;  // mid-block or out-of-text target: ignore
    if (infeasible(s)) return;
    const u32 i = b->index;
    if (!has_state[i]) {
      in_state[i] = s;
      has_state[i] = true;
      enqueue(i);
      return;
    }
    State merged;
    for (u8 r = 0; r < isa::kNumRegs; ++r) {
      merged[r] = join(in_state[i][r], s[r]);
    }
    merged[0] = abs_const(0);
    if (merged == in_state[i]) return;
    if (visits[i] >= kMaxBlockVisits) {
      // Widen: any register still changing goes straight to Unknown.
      for (u8 r = 1; r < isa::kNumRegs; ++r) {
        if (!(merged[r] == in_state[i][r])) merged[r] = AbsVal{};
      }
      if (merged == in_state[i]) return;
    }
    in_state[i] = merged;
    enqueue(i);
  };

  // Roots: the entry point and every address-taken text address (thread
  // entries and jump-table targets enter execution without a static edge).
  propagate(program.entry, root_state());
  for (Addr addr : cfg.address_taken) {
    propagate(addr, root_state());
  }

  while (!worklist.empty()) {
    const u32 i = worklist.front();
    worklist.pop_front();
    queued[i] = false;
    const BasicBlock& block = cfg.blocks[i];
    visits[i] += 1;

    State out = in_state[i];
    for (Addr pc = block.start; pc + 4 < block.end; pc += 4) {
      transfer(isa::decode(program.text_word(pc)), out);
    }
    const isa::Instr term = isa::decode(program.text_word(block.terminator_pc()));

    switch (block.exit) {
      case BlockExit::kFallThrough: {
        transfer(term, out);
        propagate(block.end, out);
        break;
      }
      case BlockExit::kBranch: {
        const Addr target =
            block.terminator_pc() + 4 + (static_cast<Addr>(term.imm) << 2);
        const Addr fall = block.end;
        for (Addr succ : block.successors) {
          State edge = out;
          if (target != fall) refine_edge(term, /*taken=*/succ == target, edge);
          propagate(succ, edge);
        }
        break;
      }
      case BlockExit::kJump: {
        for (Addr succ : block.successors) propagate(succ, out);
        break;
      }
      case BlockExit::kCall: {
        // Into the callee with the return address bound...
        State callee = out;
        callee[isa::kRa] = abs_const(from_u32(block.terminator_pc() + 4));
        for (Addr succ : block.successors) propagate(succ, callee);
        // ...and across the call: caller-saved clobbered, sp/gp/s* kept
        // (ABI assumption, documented in docs/analysis.md).
        propagate(block.terminator_pc() + 4, clobber_call(out));
        break;
      }
      case BlockExit::kIndirect: {
        if (term.op == isa::Op::kJalr) {
          State callee = out;
          callee[isa::kRa] = AbsVal{};
          callee[term.rd] = abs_const(from_u32(block.terminator_pc() + 4));
          for (Addr succ : block.successors) propagate(succ, callee);
          propagate(block.terminator_pc() + 4, clobber_call(out));
        } else {
          for (Addr succ : block.successors) propagate(succ, out);
        }
        break;
      }
      case BlockExit::kReturn: {
        // Return edges are modeled at the call site (the kCall
        // fall-through clobber), not here: propagating the callee's exit
        // state to every return site would mix unrelated call chains.
        break;
      }
      case BlockExit::kSyscall: {
        State next = out;
        next[isa::kV0] = AbsVal{};
        next[isa::kV1] = AbsVal{};
        for (Addr succ : block.successors) propagate(succ, next);
        break;
      }
    }
  }

  // --- Collect access sites from reachable blocks. --------------------
  std::set<u32> pages;
  std::set<u32> store_pages;
  struct FnAcc {
    std::set<u32> pages;
    std::set<u32> store_pages;
    u32 exact = 0, over = 0, unknown = 0;
  };
  std::map<Addr, FnAcc> fn_acc;

  // Function-entry candidates, as in the CFG's return-site inference.
  std::set<Addr> entries;
  entries.insert(program.entry);
  for (const CallEdge& call : cfg.calls) entries.insert(call.callee);
  for (Addr addr : cfg.address_taken) entries.insert(addr);
  auto function_of = [&](Addr pc) {
    auto it = entries.upper_bound(pc);
    return (it == entries.begin()) ? program.entry : *std::prev(it);
  };

  auto record_envelope = [](bool& has, i64& env_lo, i64& env_hi, i64 lo, i64 hi) {
    if (!has) {
      has = true;
      env_lo = lo;
      env_hi = hi;
    } else {
      env_lo = std::min(env_lo, lo);
      env_hi = std::max(env_hi, hi);
    }
  };

  for (const BasicBlock& block : cfg.blocks) {
    if (!block.reachable) continue;
    // No abstract state means every edge into the block was proven
    // infeasible (the roots cover the entry and all address-taken targets),
    // i.e. the block is dead code under the concrete semantics too — its
    // sites can never commit, so they contribute nothing to the footprint.
    if (!has_state[block.index]) continue;
    State s = in_state[block.index];
    for (Addr pc = block.start; pc < block.end; pc += 4) {
      const isa::Instr in = isa::decode(program.text_word(pc));
      const bool load = is_load(in.op);
      const bool store = is_store(in.op);
      if (load || store) {
        AccessSite site;
        site.pc = pc;
        site.is_store = store;
        const AbsVal base = s[in.rs];
        const u32 size = access_size(in.op);
        const i64 lo = base.lo + in.imm;
        const i64 hi = base.hi + in.imm + size - 1;
        const bool resolvable =
            base.kind != Kind::kUnknown && hi - lo <= kMaxSpanBytes;
        if (!resolvable) {
          site.base = AddressBase::kUnknown;
          site.precision = AccessPrecision::kUnknown;
        } else {
          site.lo = lo;
          site.hi = hi;
          site.precision =
              is_singleton(base) ? AccessPrecision::kExact : AccessPrecision::kOver;
          switch (base.kind) {
            case Kind::kAbs:
              if (lo < 0 || hi > kMaxVal) {
                site.base = AddressBase::kUnknown;
                site.precision = AccessPrecision::kUnknown;
              } else {
                site.base = AddressBase::kAbsolute;
              }
              break;
            case Kind::kSp:
              site.base = AddressBase::kStack;
              break;
            case Kind::kGp:
              site.base = AddressBase::kGlobal;
              break;
            default:
              site.base = AddressBase::kUnknown;
              site.precision = AccessPrecision::kUnknown;
              break;
          }
        }

        FnAcc& fn = fn_acc[function_of(pc)];
        switch (site.precision) {
          case AccessPrecision::kExact:
            fp.exact_sites += 1;
            fn.exact += 1;
            break;
          case AccessPrecision::kOver:
            fp.over_sites += 1;
            fn.over += 1;
            break;
          case AccessPrecision::kUnknown:
            fp.unknown_sites += 1;
            fn.unknown += 1;
            break;
        }
        if (site.base == AddressBase::kAbsolute) {
          add_page_range(pages, static_cast<Addr>(site.lo), static_cast<Addr>(site.hi));
          add_page_range(fn.pages, static_cast<Addr>(site.lo),
                         static_cast<Addr>(site.hi));
          if (store) {
            add_page_range(store_pages, static_cast<Addr>(site.lo),
                           static_cast<Addr>(site.hi));
            add_page_range(fn.store_pages, static_cast<Addr>(site.lo),
                           static_cast<Addr>(site.hi));
          }
        } else if (site.base == AddressBase::kStack) {
          record_envelope(fp.has_sp_range, fp.sp_lo, fp.sp_hi, site.lo, site.hi);
        } else if (site.base == AddressBase::kGlobal) {
          record_envelope(fp.has_gp_range, fp.gp_lo, fp.gp_hi, site.lo, site.hi);
        }
        fp.sites.push_back(site);
      }
      if (pc + 4 < block.end) transfer(in, s);
    }
  }

  fp.pages.assign(pages.begin(), pages.end());
  fp.store_pages.assign(store_pages.begin(), store_pages.end());
  for (auto& [entry, acc] : fn_acc) {
    FunctionFootprint fn;
    fn.entry = entry;
    fn.pages.assign(acc.pages.begin(), acc.pages.end());
    fn.store_pages.assign(acc.store_pages.begin(), acc.store_pages.end());
    fn.exact_sites = acc.exact;
    fn.over_sites = acc.over;
    fn.unknown_sites = acc.unknown;
    fp.functions.push_back(std::move(fn));
  }
  std::sort(fp.sites.begin(), fp.sites.end(),
            [](const AccessSite& a, const AccessSite& b) { return a.pc < b.pc; });
  return fp;
}

}  // namespace rse::analysis
