// Control-flow graph recovery over an assembled guest program (decoder
// driven, no execution).  The CFG is the substrate for the diagnostics pass
// (analyzer.hpp) and for the per-block legal-successor table the CFC module
// consumes at load time.
//
// Recovery rules (documented in docs/analysis.md):
//   * block leaders: the entry point, every direct branch/jump target, the
//     instruction after any control transfer or syscall, every address-taken
//     text address (lui/ori materializations and data words that decode to
//     aligned text addresses — the assembler's `la`/jump-table idioms);
//   * direct branches get {fall-through, target}; j/jal get {target} (jal
//     additionally records a call edge whose return site is pc+4);
//   * `jr $ra` blocks get the return sites of every call reaching the
//     containing function when that set is statically known, and are marked
//     indirect-unresolved otherwise;
//   * other indirect jumps (`jr` on a non-ra register, `jalr`) resolve to
//     the address-taken target set when one was recovered, and are marked
//     indirect-unresolved otherwise;
//   * a syscall ends its block (the OS may redirect control) with the
//     fall-through as the static successor.
#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "isa/program.hpp"

namespace rse::analysis {

/// How a basic block hands control onward.
enum class BlockExit : u8 {
  kFallThrough,  // last instruction is not a control transfer
  kBranch,       // conditional branch: fall-through + encoded target
  kJump,         // direct unconditional jump (j)
  kCall,         // direct call (jal): control enters the callee
  kReturn,       // jr $ra: return sites inferred from call edges
  kIndirect,     // jr (non-ra) / jalr: data-dependent target
  kSyscall,      // serializing trap; the OS chooses the continuation
};

struct BasicBlock {
  u32 index = 0;
  Addr start = 0;
  Addr end = 0;  // exclusive; terminator lives at end - 4
  BlockExit exit = BlockExit::kFallThrough;
  std::vector<Addr> successors;  // statically legal next-PC set (sorted)
  bool indirect_resolved = true;  // false: successors are a guess at best
  bool reachable = false;

  Addr terminator_pc() const { return end - 4; }
};

/// One direct call site (jal) — the raw material for return-edge inference.
struct CallEdge {
  Addr call_pc = 0;
  Addr callee = 0;
  Addr return_site = 0;  // call_pc + 4
};

struct ControlFlowGraph {
  Addr text_base = 0;
  Addr text_end = 0;
  std::vector<BasicBlock> blocks;  // sorted by start address
  std::vector<CallEdge> calls;
  /// Text addresses whose value is materialized somewhere (la expansion or a
  /// data word): the legal landing set for unresolved-target indirect jumps.
  std::set<Addr> address_taken;

  /// Block containing `pc`, or nullptr when pc is outside the text segment.
  const BasicBlock* block_at(Addr pc) const;

  u32 reachable_blocks() const;
};

/// Recover the CFG from the encoded text (pure function of the program).
ControlFlowGraph build_cfg(const isa::Program& program);

/// Per-indirect-jump legal-target sets: maps the PC of every *resolved*
/// indirect jump (jr/jalr) to its statically computed successor set.  PCs of
/// unresolved indirect jumps are absent — a consumer (the CFC) falls back to
/// its range check for those.  Shape-compatible with
/// modules::CfcSuccessorTable without a dependency on the modules library.
using IndirectTargetTable = std::unordered_map<Addr, std::vector<Addr>>;

/// Extract the CFC handoff table from a recovered CFG.
IndirectTargetTable indirect_targets(const ControlFlowGraph& cfg);

}  // namespace rse::analysis
