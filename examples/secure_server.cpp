// A DDT-protected multithreaded server surviving a malicious thread crash —
// the paper's headline recovery scenario (sections 4.2 and 5.4).
//
// A 4-worker server handles simulated network requests while the Data
// Dependency Tracker logs page-level inter-thread dependencies and
// checkpoints shared pages.  Midway, one worker is compromised and crashes;
// the OS recovery driver queries the DDT, kills only the dependent closure,
// undoes the killed threads' memory updates, and lets the survivors finish
// the remaining requests.
#include <algorithm>
#include <iostream>

#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "workloads/workloads.hpp"

namespace {

// Figure 8-style ASCII timeline: one row per thread, '=' while it owns the
// core, 'x' at the crash.
void print_timeline(const std::vector<rse::os::RunSlice>& slices, rse::Cycle crash_at,
                    rse::ThreadId crashed, rse::Cycle end) {
  if (slices.empty() || end == 0) return;
  constexpr int kColumns = 72;
  rse::ThreadId max_thread = 0;
  for (const auto& slice : slices) max_thread = std::max(max_thread, slice.thread);
  std::cout << "execution timeline (Figure 8 style; '=' running, 'x' crash):\n";
  for (rse::ThreadId t = 0; t <= max_thread; ++t) {
    std::string row(kColumns, '.');
    for (const auto& slice : slices) {
      if (slice.thread != t) continue;
      const int from = static_cast<int>(slice.from * kColumns / end);
      const int to = std::max(from + 1, static_cast<int>(slice.to * kColumns / end));
      for (int c = from; c < to && c < kColumns; ++c) row[c] = '=';
    }
    if (t == crashed && crash_at != 0) {
      const int c = std::min(kColumns - 1, static_cast<int>(crash_at * kColumns / end));
      row[c] = 'x';
      for (int k = c + 1; k < kColumns; ++k) row[k] = ' ';
    }
    std::cout << "  t" << t << " |" << row << "|\n";
  }
}

}  // namespace

int main() {
  using namespace rse;

  os::MachineConfig machine_config;
  machine_config.framework_present = true;
  os::Machine machine(machine_config);
  os::GuestOs guest(machine);
  guest.set_record_slices(true);

  os::NetworkConfig net;
  net.total_requests = 40;
  net.interarrival = 800;
  net.io_latency_mean = 8000;
  guest.network().configure(net);

  workloads::ServerParams params;
  params.threads = 4;
  params.compute_iters = 120;
  params.enable_ddt = true;  // the server enables the DDT via a CHECK
  guest.load(isa::assemble(workloads::server_source(params)));

  // Let the server run until it has handled part of the load.  (Dependencies
  // accumulate over time — page sharing is transitive — so the earlier the
  // crash, the more threads are still healthy; this is exactly the paper's
  // Figure 8 observation that the kill set depends on event timing.)
  std::cout << "running 4-worker server with DDT protection...\n";
  while (!guest.finished() && guest.stats().pages_saved < 5) guest.step();

  std::cout << "  " << guest.network().stats().completed << "/40 requests done, "
            << guest.stats().pages_saved << " page checkpoints, "
            << machine.ddt()->stats().dependencies_logged
            << " dependencies logged\n";

  // A malicious request compromises worker thread 2: it crashes.
  std::cout << "\n>>> injecting crash into worker thread 2 <<<\n\n";
  const Cycle crash_at = machine.now();
  guest.inject_crash(2);
  guest.run();

  if (guest.recoveries().empty()) {
    std::cout << "no recovery happened (unexpected)\n";
    return 1;
  }
  const os::RecoveryReport& report = guest.recoveries().front();
  std::cout << "recovery report:\n  faulty thread: " << report.faulty << "\n  killed:       ";
  for (ThreadId t : report.killed) std::cout << " t" << t;
  std::cout << "\n  survivors:    ";
  for (ThreadId t : report.survivors) std::cout << " t" << t;
  std::cout << "\n  pages restored: " << report.pages_restored << "\n\n";

  print_timeline(guest.run_slices(), crash_at, 2, machine.now());

  std::cout << "\nafter recovery the survivors kept serving:\n";
  std::cout << "  requests completed: " << guest.network().stats().completed << "/40\n";
  std::cout << "  process exit code:  " << guest.exit_code()
            << (guest.exit_code() == 0 ? " (clean shutdown)" : "") << "\n";
  std::cout << "  guest printed:      " << guest.output();

  // Contrast: without the DDT the kill-all policy would have taken the whole
  // process down (see tests/integration/end_to_end_test.cpp).
  return 0;
}
