// Memory Layout Randomization in action (paper section 4.1): the loader
// invokes the MLR module so every process instance gets a different memory
// layout, and an attack that relies on the fixed default layout crashes
// instead of hijacking the process.
#include <iostream>

#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "workloads/workloads.hpp"

using namespace rse;

namespace {

/// Run a probe that prints its own stack pointer, with or without MLR.
Addr probe_stack_base(bool randomize, u64 hw_seed) {
  os::MachineConfig machine_config;
  machine_config.framework_present = true;
  machine_config.mlr.seed = hw_seed;  // different silicon entropy per "boot"
  os::Machine machine(machine_config);
  os::OsConfig os_config;
  os_config.randomize_layout = randomize;
  os::GuestOs guest(machine, os_config);
  guest.load(isa::assemble(R"(
.text
main:
  li a0, 0
  li v0, 1
  syscall
)"));
  guest.run();
  return guest.stack_base();
}

}  // namespace

int main() {
  std::cout << "=== process memory layout across four loads ===\n";
  std::cout << "without MLR (fixed layout an attacker can rely on):\n";
  for (int boot = 0; boot < 4; ++boot) {
    std::cout << "  stack base = 0x" << std::hex << probe_stack_base(false, 100 + boot)
              << std::dec << "\n";
  }
  std::cout << "with the MLR module randomizing at load time:\n";
  for (int boot = 0; boot < 4; ++boot) {
    std::cout << "  stack base = 0x" << std::hex << probe_stack_base(true, 100 + boot)
              << std::dec << "\n";
  }

  // The attack: guest code that transfers control to a hardcoded address
  // derived from the *default* layout (what ~60% of CERT-reported attacks
  // assumed, per the paper).  Under MLR the address holds nothing.
  std::cout << "\n=== fixed-layout attack vs randomized process ===\n";
  os::MachineConfig machine_config;
  machine_config.framework_present = true;
  os::Machine machine(machine_config);
  os::OsConfig os_config;
  os_config.randomize_layout = true;
  os::GuestOs guest(machine, os_config);
  guest.load(isa::assemble(R"(
.text
main:
  li t0, 0x7FFEFF00   # "known" code location under the fixed layout
  jr t0
)"));
  guest.run();
  std::cout << "attack outcome: exit code " << guest.exit_code()
            << (guest.exit_code() == 139 ? " — the hijack became a contained crash\n"
                                         : " — unexpected\n");
  std::cout << "(the MLR converts a control-flow hijack into a recoverable crash,\n"
            << " which the DDT recovery of example `secure_server` then survives)\n";
  return 0;
}
