// Fault-injection campaign against the Instruction Checker Module (paper
// section 4.3): random multi-bit flips are injected on the memory-to-dispatch
// path.  Flips on *checked* instructions (those following an ICM CHECK) must
// all be detected, and transient ones recovered by the flush/retry protocol;
// flips on unchecked instructions show what the ICM exists to prevent.
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "workloads/workloads.hpp"

using namespace rse;

namespace {

struct CampaignResult {
  int detected_recovered = 0;
  int detected_contained = 0;
  int benign = 0;
  int silent_corruption = 0;
  int not_triggered = 0;
};

CampaignResult campaign(const std::string& source, const std::string& expected,
                        const std::vector<Addr>& victims, int trials, u64 seed) {
  Xorshift64 rng(seed);
  CampaignResult result;
  for (int trial = 0; trial < trials; ++trial) {
    os::MachineConfig config;
    config.framework_present = true;
    os::Machine machine(config);
    os::GuestOs guest(machine);
    guest.load(isa::assemble(source));

    const Addr victim = victims[rng.next_below(victims.size())];
    Word mask = 0;
    const int bits = 1 + static_cast<int>(rng.next_below(3));
    for (int b = 0; b < bits; ++b) mask |= 1u << rng.next_below(32);
    const u64 trigger = 2 + rng.next_below(60);  // Nth fetch of that pc
    u64 fetches = 0;
    bool injected = false;
    machine.core().set_fetch_fault_hook([&](Addr pc, Word raw) -> Word {
      if (pc == victim && ++fetches == trigger) {
        injected = true;
        return raw ^ mask;
      }
      return raw;
    });

    guest.run();

    const bool output_ok = guest.output() == expected && guest.exit_code() == 0;
    const bool icm_saw_it = machine.icm()->stats().mismatches > 0;
    if (!injected) {
      ++result.not_triggered;
    } else if (output_ok) {
      if (icm_saw_it) {
        ++result.detected_recovered;
      } else {
        ++result.benign;  // flip had no architectural effect
      }
    } else if (icm_saw_it || guest.exit_code() == 139) {
      ++result.detected_contained;
    } else {
      ++result.silent_corruption;
    }
  }
  return result;
}

void print(const char* title, const CampaignResult& r) {
  std::cout << title << "\n"
            << "  detected + retried to full recovery: " << r.detected_recovered << "\n"
            << "  detected + contained by the OS:      " << r.detected_contained << "\n"
            << "  benign (no architectural effect):    " << r.benign << "\n"
            << "  silent wrong output (escapes):       " << r.silent_corruption << "\n"
            << "  injector never triggered:            " << r.not_triggered << "\n\n";
}

}  // namespace

int main() {
  workloads::KMeansParams params;
  params.patterns = 60;
  params.clusters = 8;
  params.iters = 2;
  const std::string source = workloads::instrument_checks(workloads::kmeans_source(params));
  const isa::Program program = isa::assemble(source);

  // Golden run.
  std::string expected;
  {
    os::MachineConfig config;
    config.framework_present = true;
    os::Machine machine(config);
    os::GuestOs guest(machine);
    guest.load(program);
    guest.run();
    expected = guest.output();
  }
  std::cout << "golden kMeans output: " << expected << "\n";

  // Victim sets: instructions covered by an ICM CHECK vs everything else.
  std::vector<Addr> checked, unchecked;
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    const Addr pc = program.text_base + static_cast<Addr>(i * 4);
    const isa::Instr instr = isa::decode(program.text[i]);
    if (i > 0) {
      const isa::Instr prev = isa::decode(program.text[i - 1]);
      if (prev.op == isa::Op::kChk && prev.chk_module == isa::ModuleId::kIcm) {
        checked.push_back(pc);
        continue;
      }
    }
    if (instr.op != isa::Op::kChk) unchecked.push_back(pc);
  }
  std::cout << checked.size() << " checked instructions, " << unchecked.size()
            << " unchecked in the binary\n\n";

  print("--- flips on CHECKED instructions (must never escape) ---",
        campaign(source, expected, checked, 20, 1234));
  print("--- flips on UNCHECKED instructions (what ICM coverage prevents) ---",
        campaign(source, expected, unchecked, 20, 5678));

  std::cout << "Reading: every triggered flip on a checked instruction is caught by\n"
            << "the binary comparison against CheckerMemory; transient ones recover\n"
            << "via flush+refetch.  Unchecked flips can silently corrupt output —\n"
            << "the coverage argument for compiler-driven CHECK insertion.\n";
  return 0;
}
