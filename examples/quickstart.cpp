// Quickstart: assemble a small guest program, run it on the simulated
// machine with the RSE framework and the Instruction Checker Module enabled,
// and print execution statistics.
//
//   $ ./quickstart
//
// This is the minimal end-to-end tour of the public API:
//   isa::assemble  -> a Program image
//   os::Machine    -> memory + caches + out-of-order core + RSE
//   os::GuestOs    -> loader, syscalls, scheduler
#include <iostream>

#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"

int main() {
  using namespace rse;

  // A guest program: sum the squares 1..10, guarding the loop branch with an
  // ICM CHECK instruction (the `chk icm` line).  `chk frame` enables the
  // module — both are the ISA extension of paper section 3.3.
  const char* source = R"(
.text
main:
  chk frame, 1, nblk, r0, 1   # enable the ICM (module id 1)
  li s0, 0                    # i
  li s1, 0                    # sum
loop:
  addi s0, s0, 1
  mul t0, s0, s0
  add s1, s1, t0
  li t1, 10
  chk icm, 0, blk, r0, 0      # check the binary of the next instruction
  blt s0, t1, loop
  move a0, s1
  li v0, 2                    # sys_print_int
  syscall
  li a0, 10
  li v0, 3                    # sys_print_char '\n'
  syscall
  li a0, 0
  li v0, 1                    # sys_exit
  syscall
)";

  // Build the machine: paper configuration (Figure 1), RSE present.
  os::MachineConfig config;
  config.framework_present = true;
  os::Machine machine(config);
  os::GuestOs guest(machine);

  guest.load(isa::assemble(source));
  guest.run();

  std::cout << "guest output:      " << guest.output();
  std::cout << "exit code:         " << guest.exit_code() << "\n";
  std::cout << "cycles:            " << machine.now() << "\n";
  std::cout << "instructions:      " << machine.core().stats().instructions << "\n";
  std::cout << "CHK instructions:  " << machine.core().stats().chk_committed << "\n";
  std::cout << "ICM checks passed: " << machine.icm()->stats().checks_completed << "\n";
  std::cout << "ICM cache hits:    " << machine.icm()->stats().cache_hits << "\n";
  std::cout << "branch mispredicts:" << machine.core().stats().mispredicts << "\n";
  std::cout << "il1 miss rate:     " << machine.il1().stats().miss_rate() * 100 << "%\n";
  return guest.exit_code();
}
