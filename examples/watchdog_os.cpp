// Adaptive Heartbeat Monitor watching guest threads (paper section 4.4):
// two worker threads heartbeat the AHBM through CHECK instructions; one of
// them deadlocks mid-run and the module flags it after its learned timeout.
#include <iostream>

#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"

int main() {
  using namespace rse;

  os::MachineConfig machine_config;
  machine_config.framework_present = true;
  machine_config.ahbm.sample_interval = 2048;
  machine_config.ahbm.min_timeout = 4096;
  os::Machine machine(machine_config);
  os::GuestOs guest(machine);

  machine.ahbm()->set_hang_handler([&](u32 entity, Cycle now, Cycle silence) {
    std::cout << "[AHBM] cycle " << now << ": entity " << entity << " missed its heartbeat ("
              << silence << " cycles silent, adaptive timeout "
              << machine.ahbm()->timeout_of(entity).value_or(0) << ")\n";
  });

  // worker(id): registers itself with the AHBM, beats every loop iteration.
  // Worker 1 "deadlocks" (spins without heartbeating) after 60 iterations.
  guest.load(isa::assemble(R"(
.text
main:
  chk frame, 1, nblk, r0, 4    # enable the AHBM (module id 4)
  la a0, worker
  li a1, 1
  li v0, 6
  syscall
  move s0, v0
  la a0, worker
  li a1, 2
  li v0, 6
  syscall
  move s1, v0
  move a0, s0
  li v0, 9
  syscall                      # join worker 1 (never returns: it hangs...)
  li a0, 0
  li v0, 1
  syscall

worker:
  move s7, a0                  # entity id
  chk ahbm, 3, nblk, s7, 0     # register with the heartbeat monitor
  li s6, 0
work:
  addi s6, s6, 1
  # do a slice of work
  li t0, 0
slice:
  li t1, 300
  addi t0, t0, 1
  blt t0, t1, slice
  chk ahbm, 4, nblk, s7, 0     # heartbeat
  # worker 1 deadlocks after 60 iterations
  li t2, 60
  blt s6, t2, work
  li t3, 1
  bne s7, t3, work             # worker 2 keeps going (and beating)
hang:
  b hang                       # worker 1: silent spin, no heartbeats
)"));

  std::cout << "two workers heartbeating the AHBM; worker 1 will deadlock...\n";
  // Run a bounded slice of time (the hung worker never exits).
  for (int i = 0; i < 2'000'000 && machine.ahbm()->stats().hangs_declared == 0; ++i) {
    guest.step();
  }
  for (int i = 0; i < 10'000; ++i) guest.step();  // let worker 2 beat on

  const auto& stats = machine.ahbm()->stats();
  std::cout << "\nAHBM stats: " << stats.registrations << " entities registered, "
            << stats.beats_received << " heartbeats received, " << stats.hangs_declared
            << " hang(s) declared, " << stats.false_resumes << " false resume(s)\n";
  std::cout << "worker 2 timeout adapted to "
            << machine.ahbm()->timeout_of(2).value_or(0) << " cycles\n";
  return stats.hangs_declared == 1 ? 0 : 1;
}
