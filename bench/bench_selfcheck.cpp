// Table 2 scenario sweep: inject each RSE error scenario into a running
// checked workload and report what the self-checking logic did and what it
// cost the application.
#include <iostream>

#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "report/table.hpp"
#include "workloads/workloads.hpp"

using namespace rse;

namespace {

const char* verdict_name(engine::SelfCheckVerdict verdict) {
  switch (verdict) {
    case engine::SelfCheckVerdict::kOk: return "none";
    case engine::SelfCheckVerdict::kNoProgress: return "no-progress";
    case engine::SelfCheckVerdict::kFalseAlarmStorm: return "false-alarm storm";
    case engine::SelfCheckVerdict::kStuckAt1: return "stuck-at-1 bit";
  }
  return "?";
}

struct Outcome {
  bool finished = false;
  bool correct = false;
  bool safe_mode = false;
  engine::SelfCheckVerdict verdict = engine::SelfCheckVerdict::kOk;
  Cycle cycles = 0;
  u64 flushes = 0;
};

Outcome run_scenario(engine::ModuleFaultMode module_fault, engine::IoqStuckFault ioq_fault) {
  os::MachineConfig config;
  config.framework_present = true;
  config.selfcheck.watchdog_timeout = 2000;
  config.selfcheck.alarm_threshold = 4;
  os::Machine machine(config);
  os::OsConfig os_config;
  os_config.check_error_retries = 50;  // let the hardware watchdog act first
  os::GuestOs guest(machine, os_config);

  workloads::KMeansParams params;
  params.patterns = 60;
  params.clusters = 8;
  params.iters = 2;
  const std::string expected = [&] {
    os::Machine ref_machine(os::MachineConfig{});
    os::GuestOs ref(ref_machine);
    ref.load(isa::assemble(workloads::kmeans_source(params)));
    ref.run();
    return ref.output();
  }();

  guest.load(isa::assemble(workloads::instrument_checks(workloads::kmeans_source(params))));
  machine.icm()->inject_fault(module_fault);
  machine.framework()->ioq().inject_stuck_fault(3, ioq_fault);
  guest.run();
  // Let the watchdog observe the quiet machine (free-entry monitoring).
  for (int i = 0; i < 5000 && !machine.framework()->safe_mode() &&
                  ioq_fault != engine::IoqStuckFault::kNone;
       ++i) {
    machine.step();
  }

  Outcome outcome;
  outcome.finished = guest.finished();
  outcome.correct = guest.output() == expected;
  outcome.safe_mode = machine.framework()->safe_mode();
  outcome.verdict = machine.framework()->verdict();
  outcome.cycles = machine.now();
  outcome.flushes = machine.core().stats().check_error_flushes;
  return outcome;
}

}  // namespace

int main() {
  std::cout << "=== Table 2: RSE error scenarios under self-checking ===\n"
            << "(every scenario must leave the application live and correct; the\n"
            << " watchdog decouples the framework where detection is possible)\n\n";

  struct Case {
    const char* name;
    engine::ModuleFaultMode module_fault;
    engine::IoqStuckFault ioq_fault;
  };
  const Case cases[] = {
      {"healthy framework", engine::ModuleFaultMode::kNone, engine::IoqStuckFault::kNone},
      {"module no progress", engine::ModuleFaultMode::kNoProgress, engine::IoqStuckFault::kNone},
      {"module false alarm", engine::ModuleFaultMode::kFalseAlarm, engine::IoqStuckFault::kNone},
      {"module false negative", engine::ModuleFaultMode::kFalseNegative,
       engine::IoqStuckFault::kNone},
      {"checkValid stuck-at-1", engine::ModuleFaultMode::kNone,
       engine::IoqStuckFault::kCheckValidStuck1},
      {"check stuck-at-1", engine::ModuleFaultMode::kNone, engine::IoqStuckFault::kCheckStuck1},
      {"checkValid stuck-at-0", engine::ModuleFaultMode::kNone,
       engine::IoqStuckFault::kCheckValidStuck0},
  };

  report::Table table({"Scenario", "app finished", "output correct", "decoupled",
                       "watchdog verdict", "flushes", "cycles"});
  for (const Case& c : cases) {
    std::cerr << c.name << "..." << std::flush;
    const Outcome o = run_scenario(c.module_fault, c.ioq_fault);
    table.row({c.name, o.finished ? "yes" : "NO", o.correct ? "yes" : "NO",
               o.safe_mode ? "yes" : "no", verdict_name(o.verdict),
               std::to_string(o.flushes), std::to_string(o.cycles)});
    std::cerr << " done\n";
  }
  table.print();
  std::cout << "\nNote: a false-negative module is undetectable by construction (the\n"
            << "application merely loses protection), matching Table 2 row 3.\n";
  return 0;
}
