// AHBM evaluation (the paper describes the module but reports no numbers —
// this bench substantiates the "adaptive timeout" claim): detection latency
// and false-alarm behaviour of the adaptive estimator vs fixed timeouts,
// across entities with different heartbeat rates and jitter.
#include <iostream>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "mem/bus.hpp"
#include "mem/main_memory.hpp"
#include "modules/ahbm/ahbm.hpp"
#include "report/table.hpp"
#include "rse/framework.hpp"

using namespace rse;

namespace {

struct Scenario {
  const char* name;
  Cycle beat_gap;     // mean inter-heartbeat gap
  u32 jitter_pct;     // +/- jitter on the gap
  Cycle hang_at;      // entity goes silent at this cycle (0 = never)
};

struct Outcome {
  u64 false_alarms = 0;       // hang declared while the entity still beats
  std::optional<Cycle> detection_latency;  // cycles from real hang to detection
};

Outcome simulate(const Scenario& scenario, bool adaptive, Cycle fixed_timeout) {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  engine::Framework fw{memory, bus, 16};
  modules::AhbmConfig config;
  config.adaptive = adaptive;
  config.fixed_timeout = fixed_timeout;
  config.sample_interval = 512;
  config.min_timeout = 1024;
  modules::AhbmModule ahbm(fw, config);

  Outcome outcome;
  std::vector<Cycle> hang_detections;
  ahbm.set_hang_handler([&](u32, Cycle now, Cycle) { hang_detections.push_back(now); });
  ahbm.register_entity(1, 0);

  Xorshift64 rng(42);
  const Cycle horizon = 600'000;
  Cycle next_beat = scenario.beat_gap;
  for (Cycle now = 1; now <= horizon; ++now) {
    const bool hung = scenario.hang_at != 0 && now >= scenario.hang_at;
    if (!hung && now >= next_beat) {
      ahbm.beat(1, now);
      const i64 span = static_cast<i64>(scenario.beat_gap) * scenario.jitter_pct / 100;
      next_beat = now + scenario.beat_gap +
                  (span > 0 ? rng.next_in(-span, span) : 0);
    }
    ahbm.tick(now);
  }
  for (Cycle at : hang_detections) {
    if (scenario.hang_at != 0 && at >= scenario.hang_at) {
      if (!outcome.detection_latency) outcome.detection_latency = at - scenario.hang_at;
    } else {
      ++outcome.false_alarms;
    }
  }
  return outcome;
}

std::string fmt_latency(const Outcome& o) {
  return o.detection_latency ? std::to_string(*o.detection_latency) : "not detected";
}

}  // namespace

int main() {
  std::cout << "=== AHBM: adaptive vs fixed heartbeat timeouts ===\n"
            << "(the adaptive estimator — Jacobson mean + 4*deviation over inter-beat\n"
            << " gaps — must detect real hangs quickly at every beat rate without\n"
            << " false alarms; any single fixed timeout fails one side)\n\n";

  const std::vector<Scenario> scenarios = {
      {"fast heart (gap 500), hangs", 500, 30, 300'000},
      {"slow heart (gap 20k), hangs", 20'000, 30, 300'000},
      {"bursty heart (gap 4k +/-80%), healthy", 4'000, 80, 0},
      {"fast heart, healthy", 500, 30, 0},
  };

  report::Table table({"Scenario", "Adaptive: false alarms", "Adaptive: detect latency",
                       "Fixed 8k: false alarms", "Fixed 8k: detect latency",
                       "Fixed 64k: false alarms", "Fixed 64k: detect latency"});
  for (const Scenario& s : scenarios) {
    const Outcome adaptive = simulate(s, true, 0);
    const Outcome fixed_short = simulate(s, false, 8'000);
    const Outcome fixed_long = simulate(s, false, 64'000);
    table.row({s.name, std::to_string(adaptive.false_alarms), fmt_latency(adaptive),
               std::to_string(fixed_short.false_alarms), fmt_latency(fixed_short),
               std::to_string(fixed_long.false_alarms), fmt_latency(fixed_long)});
  }
  table.print();
  std::cout << "\nReading: the short fixed timeout false-alarms on slow/bursty hearts;\n"
            << "the long one detects fast-heart hangs ~10x slower than adaptive.\n";
  return 0;
}
