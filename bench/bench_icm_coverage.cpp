// Ablation: ICM coverage vs cost.  The paper's Table 4 checks all
// control-flow instructions; this bench sweeps the instrumentation policy
// (none / control / control+memory) and reports the cycle overhead alongside
// fault coverage from bit-flip campaigns targeted at each instruction class.
#include <functional>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "report/table.hpp"
#include "workloads/workloads.hpp"

using namespace rse;

namespace {

workloads::KMeansParams bench_params() {
  workloads::KMeansParams p;
  p.patterns = 120;
  p.clusters = 8;
  p.iters = 2;
  return p;
}

Cycle run_cycles(const std::string& source) {
  os::MachineConfig config;
  config.framework_present = true;
  os::Machine machine(config);
  os::GuestOs guest(machine);
  guest.load(isa::assemble(source));
  guest.run();
  return machine.now();
}

/// Flip one random bit on the Nth fetch of instructions of a given class;
/// count corruptions that escaped (wrong output, nothing detected).
struct Coverage {
  u32 triggered = 0;
  u32 escaped = 0;            // silent wrong output, nothing noticed
  u32 uncontrolled_crash = 0; // fail-stop without preemptive detection
  u32 preempted = 0;          // caught by the ICM before commit
};

Coverage campaign(const std::string& source, const std::string& expected,
                  const std::function<bool(const isa::Instr&)>& victim_class, u64 seed,
                  int trials) {
  const isa::Program program = isa::assemble(source);
  std::vector<Addr> victims;
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    if (victim_class(isa::decode(program.text[i]))) {
      victims.push_back(program.text_base + static_cast<Addr>(i * 4));
    }
  }
  Xorshift64 rng(seed);
  Coverage coverage;
  for (int trial = 0; trial < trials; ++trial) {
    os::MachineConfig config;
    config.framework_present = true;
    os::Machine machine(config);
    os::GuestOs guest(machine);
    guest.load(program);
    const Addr victim = victims[rng.next_below(victims.size())];
    const Word mask = 1u << rng.next_below(32);
    const u64 trigger = 2 + rng.next_below(40);
    u64 fetches = 0;
    bool injected = false;
    machine.core().set_fetch_fault_hook([&](Addr pc, Word raw) -> Word {
      if (pc == victim && ++fetches == trigger) {
        injected = true;
        return raw ^ mask;
      }
      return raw;
    });
    guest.run();
    if (!injected) continue;
    ++coverage.triggered;
    const bool output_ok = guest.output() == expected && guest.exit_code() == 0;
    const bool icm_caught = machine.icm()->stats().mismatches > 0;
    if (icm_caught) ++coverage.preempted;
    if (!output_ok) {
      if (guest.exit_code() != 0 && !icm_caught) {
        ++coverage.uncontrolled_crash;
      } else if (!icm_caught) {
        ++coverage.escaped;
      }
    }
  }
  return coverage;
}

std::string cov_cell(const Coverage& c) {
  return std::to_string(c.escaped) + " esc, " + std::to_string(c.uncontrolled_crash) +
         " crash, " + std::to_string(c.preempted) + " caught /" +
         std::to_string(c.triggered);
}

}  // namespace

int main() {
  std::cout << "=== ICM coverage/cost ablation ===\n"
            << "(flips are aimed at a specific instruction class per campaign, so the\n"
            << " policies are compared on identical threat models; 'escapes' are\n"
            << " corruptions that produced wrong output with no detection)\n\n";

  const std::string plain = workloads::kmeans_source(bench_params());
  workloads::InstrumentOptions control_only;
  workloads::InstrumentOptions control_mem;
  control_mem.check_mem = true;
  const std::string checked_control = workloads::instrument_checks(plain, control_only);
  const std::string checked_all = workloads::instrument_checks(plain, control_mem);

  const Cycle base = run_cycles(plain);
  const Cycle with_control = run_cycles(checked_control);
  const Cycle with_all = run_cycles(checked_all);

  std::string expected;
  {
    os::Machine machine{os::MachineConfig{}};
    os::GuestOs guest(machine);
    guest.load(isa::assemble(plain));
    guest.run();
    expected = guest.output();
  }

  auto is_control = [](const isa::Instr& in) { return in.is_control(); };
  auto is_mem = [](const isa::Instr& in) { return in.is_mem(); };
  const int kTrials = 40;

  report::Table table({"Policy", "cycles", "overhead", "branch flips",
                       "memory-op flips"});
  auto pct = [&](Cycle c) {
    return report::fmt_pct((static_cast<double>(c) - base) / static_cast<double>(base));
  };
  table.row({"no CHECKs", std::to_string(base), "-",
             cov_cell(campaign(plain, expected, is_control, 11, kTrials)),
             cov_cell(campaign(plain, expected, is_mem, 12, kTrials))});
  table.row({"control flow (paper Table 4)", std::to_string(with_control), pct(with_control),
             cov_cell(campaign(checked_control, expected, is_control, 21, kTrials)),
             cov_cell(campaign(checked_control, expected, is_mem, 22, kTrials))});
  table.row({"control + memory ops", std::to_string(with_all), pct(with_all),
             cov_cell(campaign(checked_all, expected, is_control, 31, kTrials)),
             cov_cell(campaign(checked_all, expected, is_mem, 32, kTrials))});
  table.print();
  std::cout << "\nReading: guarding a class eliminates both its silent escapes and its\n"
            << "uncontrolled crashes (the ICM catches the corruption pre-commit and\n"
            << "retries) — 'pre-emptive checking protects against uncontrolled\n"
            << "crashes' (section 5.2) — at increasing cycle overhead per class.\n";
  return 0;
}
