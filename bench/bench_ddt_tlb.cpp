// Ablation from the paper's footnote 10: the page-based dependency tracking
// "can also be implemented by changing the structure of the processor
// memory management unit's TLB... the problem is that the TLB is usually on
// the critical path for memory access, and the added structural and
// functional complexity may slow down memory access and the performance of
// the pipeline."
//
// We model the TLB variant by adding one cycle to every D-cache access
// (owner fields + state machine on the translation path) and compare it
// with the RSE module, whose tracking rides the Commit_Out signal off the
// critical path.
#include <iostream>

#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "report/table.hpp"
#include "workloads/workloads.hpp"

using namespace rse;

namespace {

struct RunResult {
  Cycle cycles = 0;
  u64 pages_saved = 0;
};

RunResult run_server(u32 threads, bool ddt_enabled, Cycle dl1_latency) {
  workloads::ServerParams params;
  params.threads = threads;
  params.compute_iters = 1100;
  params.enable_ddt = ddt_enabled;
  os::MachineConfig config;
  config.framework_present = true;
  config.dl1.hit_latency = dl1_latency;
  os::Machine machine(config);
  os::GuestOs guest(machine);
  os::NetworkConfig net;
  net.total_requests = 60;
  net.interarrival = 1200;
  net.io_latency_mean = 27000;
  guest.network().configure(net);
  guest.load(isa::assemble(workloads::server_source(params)));
  guest.run();
  if (guest.exit_code() != 0) std::cerr << "server run failed\n";
  return RunResult{machine.now(), guest.stats().pages_saved};
}

}  // namespace

int main() {
  std::cout << "=== DDT implementation ablation: RSE module vs TLB-based (fn. 10) ===\n"
            << "(the TLB variant charges +1 cycle on every D-cache access; the RSE\n"
            << " module tracks off the critical path and only pays for SavePages)\n\n";

  report::Table table({"Threads", "no tracking (Mcyc)", "RSE DDT (Mcyc)", "RSE ovh",
                       "TLB DDT (Mcyc)", "TLB ovh"});
  for (u32 threads : {2u, 4u, 8u}) {
    const RunResult base = run_server(threads, /*ddt=*/false, /*dl1=*/1);
    const RunResult module = run_server(threads, /*ddt=*/true, /*dl1=*/1);
    // TLB variant: same SavePage work, plus the slowed memory path.
    const RunResult tlb = run_server(threads, /*ddt=*/true, /*dl1=*/2);
    auto pct = [&](Cycle c) {
      return report::fmt_pct((static_cast<double>(c) - base.cycles) /
                             static_cast<double>(base.cycles));
    };
    table.row({std::to_string(threads), report::fmt_millions(double(base.cycles)),
               report::fmt_millions(double(module.cycles)), pct(module.cycles),
               report::fmt_millions(double(tlb.cycles)), pct(tlb.cycles)});
  }
  table.print();
  std::cout << "\nReading: the TLB placement pays its toll on every access of every\n"
            << "workload phase; the module's asynchronous placement confines the cost\n"
            << "to actual page sharing — the paper's rationale for the RSE design.\n";
  return 0;
}
