// Figure 9 reproduction: multithreaded server runtime with and without DDT
// support while varying the worker-pool size from 1 to 10, plus the number
// of memory pages saved by the SavePage mechanism.
#include <iostream>

#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "workloads/workloads.hpp"

using namespace rse;

namespace {

os::NetworkConfig fig9_network() {
  os::NetworkConfig net;
  net.total_requests = 100;
  net.interarrival = 1200;
  net.io_latency_mean = 27000;  // 3 phases: ~3x the compute per request -> saturation near 4 threads
  net.jitter_pct = 40;
  net.seed = 7;
  return net;
}

struct RunResult {
  Cycle cycles = 0;
  u64 pages_saved = 0;
  u64 dependencies = 0;
  u64 switches = 0;
};

RunResult run_server(u32 threads, bool with_ddt) {
  workloads::ServerParams params;
  params.threads = threads;
  params.compute_iters = 1100;  // ~13k instructions of compute per phase
  params.io_phases = 3;
  params.enable_ddt = with_ddt;

  os::MachineConfig config;
  config.framework_present = true;  // both runs on the RSE machine: isolates DDT cost
  os::Machine machine(config);
  os::OsConfig os_config;
  os::GuestOs guest(machine, os_config);
  guest.network().configure(fig9_network());
  guest.load(isa::assemble(workloads::server_source(params)));
  guest.run();
  if (guest.exit_code() != 0) std::cerr << "server run failed (threads=" << threads << ")\n";
  return RunResult{machine.now(), guest.stats().pages_saved,
                   machine.ddt()->stats().dependencies_logged,
                   guest.stats().context_switches};
}

}  // namespace

int main() {
  std::cout << "=== Figure 9: Performance Evaluation for DDT ===\n"
            << "(paper reference: runtime decreases with threads until ~4 then\n"
            << " stabilizes; DDT overhead starts low, climbs to ~7-8% once thread\n"
            << " parallelism is exploited; saved pages grow with thread count)\n\n";

  report::Table table({"Threads", "Runtime w/o DDT (Mcyc)", "Runtime with DDT (Mcyc)",
                       "DDT overhead", "Saved pages", "Deps logged", "Ctx switches"});
  std::optional<report::CsvWriter> csv;
  if (const auto dir = report::csv_export_dir()) {
    csv.emplace(*dir + "/fig9_ddt.csv",
                std::vector<std::string>{"threads", "runtime_without_ddt", "runtime_with_ddt",
                                         "overhead", "saved_pages", "dependencies"});
  }
  for (u32 threads = 1; threads <= 10; ++threads) {
    std::cerr << "threads=" << threads << "..." << std::flush;
    const RunResult without = run_server(threads, /*with_ddt=*/false);
    const RunResult with = run_server(threads, /*with_ddt=*/true);
    const double overhead = (static_cast<double>(with.cycles) -
                             static_cast<double>(without.cycles)) /
                            static_cast<double>(without.cycles);
    table.row({std::to_string(threads), report::fmt_millions(double(without.cycles)),
               report::fmt_millions(double(with.cycles)), report::fmt_pct(overhead),
               std::to_string(with.pages_saved), std::to_string(with.dependencies),
               std::to_string(with.switches)});
    if (csv) {
      csv->row({std::to_string(threads), std::to_string(without.cycles),
                std::to_string(with.cycles), report::fmt_fixed(overhead, 4),
                std::to_string(with.pages_saved), std::to_string(with.dependencies)});
    }
    std::cerr << " done\n";
  }
  table.print();
  if (csv && !csv->flush()) std::cerr << "failed to write CSV export\n";
  return 0;
}
