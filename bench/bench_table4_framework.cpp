// Table 4 reproduction: framework and framework+ICM cycle overheads plus the
// I-cache cost of CHECK instructions, for the three paper benchmarks
// (vpr Placement / vpr Routing analogs and kMeans).
//
// Four runs per benchmark:
//   baseline      — no RSE, memory 18/2, plain binary
//   framework     — RSE present but no module enabled, memory 19/3
//   framework+ICM — RSE + ICM checking all control-flow instructions
//   baseline+CHK  — instrumented binary on the baseline machine (the paper's
//                   NOP-rewrite methodology for measuring pure cache impact)
#include <iostream>
#include <string>

#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "report/table.hpp"
#include "workloads/workloads.hpp"

using namespace rse;

namespace {

struct RunResult {
  Cycle cycles = 0;
  u64 instructions = 0;
  u64 chk = 0;
  u64 il1_accesses = 0;
  double il1_missrate = 0;
  u64 il2_accesses = 0;
  double il2_missrate = 0;
  u64 icm_checks = 0;
  u64 chk_stall = 0;
};

RunResult run(const std::string& source, bool framework) {
  os::MachineConfig config;
  config.framework_present = framework;
  os::Machine machine(config);
  os::GuestOs guest(machine);
  guest.load(isa::assemble(source));
  guest.run();
  if (guest.exit_code() != 0) {
    std::cerr << "workload failed with exit code " << guest.exit_code() << "\n";
  }
  RunResult r;
  r.cycles = machine.now();
  r.instructions = machine.core().stats().instructions;
  r.chk = machine.core().stats().chk_committed;
  r.il1_accesses = machine.il1().stats().accesses;
  r.il1_missrate = machine.il1().stats().miss_rate();
  r.il2_accesses = machine.il2().stats().accesses;
  r.il2_missrate = machine.il2().stats().miss_rate();
  if (machine.icm() != nullptr) r.icm_checks = machine.icm()->stats().checks_completed;
  r.chk_stall = machine.core().stats().chk_commit_stall_cycles;
  return r;
}

struct BenchRow {
  std::string name;
  RunResult baseline;
  RunResult framework;
  RunResult framework_icm;
  RunResult baseline_chk;
};

BenchRow bench(const std::string& name, const std::string& source) {
  std::cerr << "running " << name << "..." << std::flush;
  BenchRow row;
  row.name = name;
  const std::string instrumented = workloads::instrument_checks(source);
  row.baseline = run(source, /*framework=*/false);
  row.framework = run(source, /*framework=*/true);
  row.framework_icm = run(instrumented, /*framework=*/true);
  row.baseline_chk = run(instrumented, /*framework=*/false);
  std::cerr << " done\n";
  return row;
}

double pct(Cycle base, Cycle with) {
  return (static_cast<double>(with) - static_cast<double>(base)) / static_cast<double>(base);
}

}  // namespace

int main() {
  std::cout << "=== Table 4: Framework Evaluation Results ===\n"
            << "(paper reference: framework overhead 3.47/3.64/4.99%, avg 4.03%;\n"
            << " framework+ICM overhead 11.04/7.73/5.44%, avg 8.1%;\n"
            << " CHECK instructions raise il1 accesses ~15-25% and miss rates slightly)\n\n";

  std::vector<BenchRow> rows;
  rows.push_back(bench("VPR-Place", workloads::vpr_place_source({})));
  rows.push_back(bench("VPR-Route", workloads::vpr_route_source({})));
  rows.push_back(bench("kMeans", workloads::kmeans_source({})));

  report::Table cycles_table({"Benchmark", "Baseline Mcyc", "Framework Mcyc", "FW+ICM Mcyc",
                              "FW ovh %", "FW+ICM ovh %"});
  double fw_sum = 0, icm_sum = 0;
  for (const BenchRow& r : rows) {
    const double fw = pct(r.baseline.cycles, r.framework.cycles);
    const double icm = pct(r.baseline.cycles, r.framework_icm.cycles);
    fw_sum += fw;
    icm_sum += icm;
    cycles_table.row({r.name, report::fmt_millions(double(r.baseline.cycles)),
                      report::fmt_millions(double(r.framework.cycles)),
                      report::fmt_millions(double(r.framework_icm.cycles)), report::fmt_pct(fw),
                      report::fmt_pct(icm)});
  }
  cycles_table.row({"Average", "", "", "", report::fmt_pct(fw_sum / rows.size()),
                    report::fmt_pct(icm_sum / rows.size())});
  cycles_table.print();

  std::cout << "\n--- I-cache impact of CHECK instructions (baseline machine) ---\n";
  report::Table cache_table({"Benchmark", "il1 acc (M) base", "il1 acc (M) +CHK",
                             "il1 miss% base", "il1 miss% +CHK", "il2 acc (M) base",
                             "il2 acc (M) +CHK", "il2 miss% base", "il2 miss% +CHK"});
  for (const BenchRow& r : rows) {
    cache_table.row({r.name, report::fmt_millions(double(r.baseline.il1_accesses)),
                     report::fmt_millions(double(r.baseline_chk.il1_accesses)),
                     report::fmt_pct(r.baseline.il1_missrate),
                     report::fmt_pct(r.baseline_chk.il1_missrate),
                     report::fmt_millions(double(r.baseline.il2_accesses)),
                     report::fmt_millions(double(r.baseline_chk.il2_accesses)),
                     report::fmt_pct(r.baseline.il2_missrate),
                     report::fmt_pct(r.baseline_chk.il2_missrate)});
  }
  cache_table.print();

  std::cout << "\n--- ICM activity in the framework+ICM configuration ---\n";
  report::Table icm_table(
      {"Benchmark", "CHK committed", "ICM checks", "commit stall cycles"});
  for (const BenchRow& r : rows) {
    icm_table.row({r.name, std::to_string(r.framework_icm.chk),
                   std::to_string(r.framework_icm.icm_checks),
                   std::to_string(r.framework_icm.chk_stall)});
  }
  icm_table.print();

  // Ablation (DESIGN.md decision 1): what if the arbiter penalty doubled?
  std::cout << "\n--- Ablation: arbiter penalty sensitivity (kMeans) ---\n";
  report::Table ablation({"Memory timing", "cycles", "overhead vs 18/2"});
  const std::string kmeans = workloads::kmeans_source({});
  os::MachineConfig base_config;
  Cycle base_cycles = 0;
  {
    os::Machine machine(base_config);
    os::GuestOs guest(machine);
    guest.load(isa::assemble(kmeans));
    guest.run();
    base_cycles = machine.now();
    ablation.row({"18/2 (no RSE)", std::to_string(base_cycles), "-"});
  }
  for (const auto& [label, first, inter] :
       {std::tuple{"19/3 (paper arbiter)", 19u, 3u}, std::tuple{"20/4 (doubled)", 20u, 4u}}) {
    os::MachineConfig config;
    config.framework_present = true;
    config.bus_with_rse = mem::BusTiming{first, inter, 8};
    os::Machine machine(config);
    os::GuestOs guest(machine);
    guest.load(isa::assemble(kmeans));
    guest.run();
    ablation.row({label, std::to_string(machine.now()),
                  report::fmt_pct(pct(base_cycles, machine.now()))});
  }
  ablation.print();
  return 0;
}
