// Fast-path engine throughput: MIPS of the exec/ fast engine (decoded block
// cache + direct-memory path) vs. the cycle-accurate OoO core on the same
// workloads, with an output-equality cross-check per measurement.  Fast mode
// is measured twice — per-block dispatch and superblock (chained) dispatch —
// and BOTH arms must clear the 10x instruction-throughput floor the smoke
// ctest enforces in CI; the superblock gain over per-block dispatch is
// recorded alongside.  Writes BENCH_exec.json (perf trajectory) and exits
// nonzero on any floor or output-equality violation.
//
//   bench_exec_throughput [--smoke] [--json PATH] [workload...]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/workload.hpp"
#include "exec/fast_session.hpp"
#include "isa/assembler.hpp"
#include "report/table.hpp"

using namespace rse;
using Clock = std::chrono::steady_clock;

namespace {

struct Measurement {
  u64 instructions = 0;
  double seconds = 0;
  std::string output;
  double mips() const { return seconds > 0 ? instructions / seconds / 1e6 : 0; }
};

enum class Mode { kClassic, kFastPerBlock, kFastSuperblock };

/// One fresh end-to-end run, accumulated into `m`.
void run_once(const campaign::WorkloadSetup& setup, const isa::Program& program, Mode mode,
              Measurement& m) {
  os::Machine machine(setup.machine);
  os::GuestOs guest(machine, setup.os);
  guest.load(program);
  for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);

  const auto start = Clock::now();
  if (mode != Mode::kClassic) {
    exec::FastSessionConfig config;
    config.relaxed = true;
    config.superblocks = mode == Mode::kFastSuperblock;
    exec::FastSession session(guest, config);
    session.seed_leaders(program);
    if (session.run_until(setup.os.run_limit) == exec::FastSession::Status::kBail) {
      session.transplant(session.virtual_now());
      guest.run();
    }
    m.instructions += session.executed() - session.engine().chks_executed() +
                      machine.core().stats().instructions;
  } else {
    guest.run();
    m.instructions += machine.core().stats().instructions;
  }
  m.seconds += std::chrono::duration<double>(Clock::now() - start).count();
  m.output = guest.output();
  if (!guest.finished()) {
    std::cerr << "workload '" << setup.name << "' hit the run limit\n";
    std::exit(1);
  }
}

/// Repeat fresh runs until `min_seconds` of measured execution accumulates.
Measurement measure(const campaign::WorkloadSetup& setup, const isa::Program& program,
                    Mode mode, double min_seconds) {
  Measurement m;
  while (m.seconds < min_seconds) run_once(setup, program, mode, m);
  return m;
}

/// The two fast arms, with repetitions interleaved so slow clock drift
/// (turbo decay, thermal throttling) biases neither arm: the superblock
/// gain is a ratio of near-simultaneous samples.
std::pair<Measurement, Measurement> measure_fast_pair(const campaign::WorkloadSetup& setup,
                                                      const isa::Program& program,
                                                      double min_seconds) {
  Measurement per_block, super;
  while (per_block.seconds < min_seconds || super.seconds < min_seconds) {
    run_once(setup, program, Mode::kFastPerBlock, per_block);
    run_once(setup, program, Mode::kFastSuperblock, super);
  }
  return {per_block, super};
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_exec.json";
  std::vector<std::string> workload_list;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    else workload_list.push_back(arg);
  }
  if (workload_list.empty()) {
    workload_list = smoke ? std::vector<std::string>{"loop"}
                          : std::vector<std::string>{"loop", "kmeans"};
  }
  const double min_seconds = smoke ? 0.05 : 0.4;
  constexpr double kRequiredSpeedup = 10.0;

  report::Table table({"workload", "classic MIPS", "per-block MIPS", "superblock MIPS",
                       "speedup", "sb gain", "output match"});
  std::ostringstream json;
  json << "{\n  \"bench\": \"exec_throughput\",\n  \"required_speedup\": "
       << kRequiredSpeedup << ",\n  \"workloads\": [\n";

  double min_speedup = -1;  // over BOTH fast arms: the floor holds either way
  bool all_outputs_match = true;
  for (std::size_t w = 0; w < workload_list.size(); ++w) {
    const campaign::WorkloadSetup setup = campaign::make_workload(workload_list[w]);
    const isa::Program program = isa::assemble(setup.source);
    const Measurement classic = measure(setup, program, Mode::kClassic, min_seconds);
    const auto [per_block, super] = measure_fast_pair(setup, program, min_seconds);
    const double per_block_speedup =
        classic.mips() > 0 ? per_block.mips() / classic.mips() : 0;
    const double super_speedup = classic.mips() > 0 ? super.mips() / classic.mips() : 0;
    const double sb_gain = per_block.mips() > 0 ? super.mips() / per_block.mips() : 0;
    const bool match =
        per_block.output == classic.output && super.output == classic.output;
    all_outputs_match = all_outputs_match && match;
    const double workload_min = std::min(per_block_speedup, super_speedup);
    if (min_speedup < 0 || workload_min < min_speedup) min_speedup = workload_min;

    table.row({setup.name, report::fmt_fixed(classic.mips(), 2),
               report::fmt_fixed(per_block.mips(), 2), report::fmt_fixed(super.mips(), 2),
               report::fmt_fixed(super_speedup, 1), report::fmt_fixed(sb_gain, 2),
               match ? "yes" : "NO"});
    json << "    {\"name\": \"" << setup.name << "\", \"classic_mips\": "
         << report::fmt_fixed(classic.mips(), 3) << ", \"fast_mips_perblock\": "
         << report::fmt_fixed(per_block.mips(), 3) << ", \"fast_mips_superblock\": "
         << report::fmt_fixed(super.mips(), 3) << ", \"speedup\": "
         << report::fmt_fixed(super_speedup, 2) << ", \"superblock_gain\": "
         << report::fmt_fixed(sb_gain, 2) << ", \"output_match\": "
         << (match ? "true" : "false") << "}" << (w + 1 < workload_list.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"min_speedup\": " << report::fmt_fixed(min_speedup, 2) << "\n}\n";
  table.print();

  std::ofstream out(json_path);
  out << json.str();
  if (!out) {
    std::cerr << "failed to write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << "\n";

  if (!all_outputs_match) {
    std::cerr << "fast-mode output diverged from the cycle-accurate run\n";
    return 1;
  }
  if (min_speedup < kRequiredSpeedup) {
    std::cerr << "fast mode is only " << min_speedup << "x the cycle-accurate core "
              << "(floor: " << kRequiredSpeedup << "x, enforced with superblocks "
              << "enabled and disabled)\n";
    return 1;
  }
  return 0;
}
