// Fast-path engine throughput: MIPS of the exec/ fast engine (decoded block
// cache + direct-memory path) vs. the cycle-accurate OoO core on the same
// workloads, with an output-equality cross-check per measurement.  Writes
// BENCH_exec.json (perf trajectory) and exits nonzero if fast mode is less
// than 10x the cycle-accurate instruction throughput on any workload —
// the floor the smoke ctest enforces in CI.
//
//   bench_exec_throughput [--smoke] [--json PATH] [workload...]
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/workload.hpp"
#include "exec/fast_session.hpp"
#include "isa/assembler.hpp"
#include "report/table.hpp"

using namespace rse;
using Clock = std::chrono::steady_clock;

namespace {

struct Measurement {
  u64 instructions = 0;
  double seconds = 0;
  std::string output;
  double mips() const { return seconds > 0 ? instructions / seconds / 1e6 : 0; }
};

/// Repeat fresh runs until `min_seconds` of measured execution accumulates.
Measurement measure(const campaign::WorkloadSetup& setup, const isa::Program& program,
                    bool fast, double min_seconds) {
  Measurement m;
  while (m.seconds < min_seconds) {
    os::Machine machine(setup.machine);
    os::GuestOs guest(machine, setup.os);
    guest.load(program);
    for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);

    const auto start = Clock::now();
    if (fast) {
      exec::FastSession session(guest, exec::FastSessionConfig{/*relaxed=*/true});
      session.seed_leaders(program);
      if (session.run_until(setup.os.run_limit) == exec::FastSession::Status::kBail) {
        session.transplant(session.virtual_now());
        guest.run();
      }
      m.instructions += session.executed() - session.engine().chks_executed() +
                        machine.core().stats().instructions;
    } else {
      guest.run();
      m.instructions += machine.core().stats().instructions;
    }
    m.seconds += std::chrono::duration<double>(Clock::now() - start).count();
    m.output = guest.output();
    if (!guest.finished()) {
      std::cerr << "workload '" << setup.name << "' hit the run limit\n";
      std::exit(1);
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_exec.json";
  std::vector<std::string> workload_list;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    else workload_list.push_back(arg);
  }
  if (workload_list.empty()) {
    workload_list = smoke ? std::vector<std::string>{"loop"}
                          : std::vector<std::string>{"loop", "kmeans"};
  }
  const double min_seconds = smoke ? 0.05 : 0.4;
  constexpr double kRequiredSpeedup = 10.0;

  report::Table table(
      {"workload", "classic MIPS", "fast MIPS", "speedup", "output match"});
  std::ostringstream json;
  json << "{\n  \"bench\": \"exec_throughput\",\n  \"required_speedup\": "
       << kRequiredSpeedup << ",\n  \"workloads\": [\n";

  double min_speedup = -1;
  bool all_outputs_match = true;
  for (std::size_t w = 0; w < workload_list.size(); ++w) {
    const campaign::WorkloadSetup setup = campaign::make_workload(workload_list[w]);
    const isa::Program program = isa::assemble(setup.source);
    const Measurement classic = measure(setup, program, /*fast=*/false, min_seconds);
    const Measurement fast = measure(setup, program, /*fast=*/true, min_seconds);
    const double speedup = classic.mips() > 0 ? fast.mips() / classic.mips() : 0;
    const bool match = fast.output == classic.output;
    all_outputs_match = all_outputs_match && match;
    if (min_speedup < 0 || speedup < min_speedup) min_speedup = speedup;

    table.row({setup.name, report::fmt_fixed(classic.mips(), 2),
               report::fmt_fixed(fast.mips(), 2), report::fmt_fixed(speedup, 1),
               match ? "yes" : "NO"});
    json << "    {\"name\": \"" << setup.name << "\", \"classic_mips\": "
         << report::fmt_fixed(classic.mips(), 3) << ", \"fast_mips\": "
         << report::fmt_fixed(fast.mips(), 3) << ", \"speedup\": "
         << report::fmt_fixed(speedup, 2) << ", \"output_match\": "
         << (match ? "true" : "false") << "}" << (w + 1 < workload_list.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"min_speedup\": " << report::fmt_fixed(min_speedup, 2) << "\n}\n";
  table.print();

  std::ofstream out(json_path);
  out << json.str();
  if (!out) {
    std::cerr << "failed to write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << "\n";

  if (!all_outputs_match) {
    std::cerr << "fast-mode output diverged from the cycle-accurate run\n";
    return 1;
  }
  if (min_speedup < kRequiredSpeedup) {
    std::cerr << "fast mode is only " << min_speedup << "x the cycle-accurate core "
              << "(floor: " << kRequiredSpeedup << "x)\n";
    return 1;
  }
  return 0;
}
