// Ablation for the runtime re-randomization extension (paper section 4.1
// proposes it for long-running applications without evaluating it): runtime
// overhead as a function of the re-randomization interval, with the MLR
// doing the relocation vs the TRR-style software fallback.
#include <iostream>

#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "report/table.hpp"

using namespace rse;

namespace {

// A long-running GOT-calling loop (the server-style workload the paper says
// re-randomization matters for).
std::string got_workload(u32 iterations) {
  std::string s = R"(
.data
.align 4
got:     .word fn0, fn1, fn2, fn3
plt:     .word got+0, got+4, got+8, got+12
acc:     .word 0
.text
main:
  la a0, got
  la a1, plt
  li a2, 16
  li v0, 16
  syscall
  li s0, 0
loop:
)";
  s += "  li t0, " + std::to_string(iterations) + "\n";
  s += R"(  bge s0, t0, done
  andi t1, s0, 3
  sll t1, t1, 2
  la t2, plt
  add t2, t2, t1
  lw t2, 0(t2)
  lw t2, 0(t2)
  jalr t2
  addi s0, s0, 1
  b loop
done:
  lw a0, acc
  li v0, 2
  syscall
  li a0, 0
  li v0, 1
  syscall
fn0:
  lw t3, acc
  addi t3, t3, 1
  sw t3, acc
  jr ra
fn1:
  lw t3, acc
  addi t3, t3, 2
  sw t3, acc
  jr ra
fn2:
  lw t3, acc
  addi t3, t3, 3
  sw t3, acc
  jr ra
fn3:
  lw t3, acc
  addi t3, t3, 4
  sw t3, acc
  jr ra
)";
  return s;
}

struct RunResult {
  Cycle cycles = 0;
  u64 rerandomizations = 0;
  Cycle stopped = 0;
  std::string output;
};

RunResult run(bool hardware, Cycle interval) {
  os::MachineConfig config;
  config.framework_present = hardware;
  os::Machine machine(config);
  os::OsConfig os_config;
  os_config.rerandomize_interval = interval;
  os::GuestOs guest(machine, os_config);
  guest.load(isa::assemble(got_workload(20000)));
  guest.run();
  return RunResult{machine.now(), guest.stats().rerandomizations,
                   guest.stats().rerandomize_cycles, guest.output()};
}

}  // namespace

int main() {
  std::cout << "=== Runtime re-randomization: overhead vs interval ===\n"
            << "(section 4.1: 'a better approach is to re-randomize the process as\n"
            << " it is running' — the cost is the process-stop time per relocation,\n"
            << " so overhead scales inversely with the interval)\n\n";

  const RunResult baseline = run(/*hardware=*/true, /*interval=*/0);
  std::cout << "baseline (no re-randomization): " << baseline.cycles << " cycles, output "
            << baseline.output << "\n\n";

  report::Table table({"Interval (cycles)", "Relocations", "Stopped cycles", "Total cycles",
                       "Overhead", "Output intact"});
  for (const Cycle interval : {100'000u, 50'000u, 20'000u, 10'000u, 5'000u, 2'000u}) {
    const RunResult r = run(true, interval);
    const double overhead = (static_cast<double>(r.cycles) - baseline.cycles) /
                            static_cast<double>(baseline.cycles);
    table.row({std::to_string(interval), std::to_string(r.rerandomizations),
               std::to_string(r.stopped), std::to_string(r.cycles),
               report::fmt_pct(overhead), r.output == baseline.output ? "yes" : "NO"});
  }
  table.print();

  std::cout << "\n--- MLR hardware vs TRR-style software relocation (interval 10k) ---\n";
  const RunResult hw = run(true, 10'000);
  const RunResult sw = run(false, 10'000);
  report::Table versus({"Implementation", "Relocations", "Stopped cycles/relocation"});
  versus.row({"MLR module (RSE)", std::to_string(hw.rerandomizations),
              std::to_string(hw.rerandomizations ? hw.stopped / hw.rerandomizations : 0)});
  versus.row({"software (TRR-style)", std::to_string(sw.rerandomizations),
              std::to_string(sw.rerandomizations ? sw.stopped / sw.rerandomizations : 0)});
  versus.print();
  std::cout << "(the software fallback's stop time is charged with the same bus "
               "formula;\n its real cost would add the software loop — see Table 5)\n";
  return 0;
}
