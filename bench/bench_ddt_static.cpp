// Static-DDT detection study: a register/data-word fault sweep run twice,
// once with the dynamic-only DDT (page ownership tracking, no prediction)
// and once with the static data-flow footprint installed at load
// (docs/analysis.md).  The dynamic DDT tracks whatever pages the program
// touches — it cannot tell a legitimate page from one reached through a
// corrupted base register.  The footprint check can: a committed access at
// a statically resolved site landing outside the predicted page set is a
// detection the baseline has no mechanism for.
//
// The sweep also quantifies the activation benefit: the fraction of first
// store touches that found their PST entry pre-reserved (SavePage setup
// work paid at load instead of in the middle of the run) — and the
// context-sensitivity gain: a third mode runs the footprint at
// --context-depth 0, so "static-footprint minus static-ctx0" counts the
// detections only the per-call-site page tables provide — and the
// field-sensitivity gain: a fourth mode runs the dense-hull domain
// (--no-field-sensitive), so "static-footprint minus static-field-off"
// counts the detections only the strided residue pages provide (a fault
// landing between the residues of a strided walk is inside the hull).
// (usage: bench_ddt_static [workload] [samples] [--expect-context-gain]
//         [--expect-field-gain]).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rse;

namespace {

struct ModeTally {
  u32 injected = 0;
  u32 detected_ddt = 0;
  u32 detected_other = 0;
  u32 sdc = 0;
  u32 masked = 0;
  u32 crash_hang = 0;

  void add(const campaign::RunResult& result) {
    if (!result.fault_applied) return;
    ++injected;
    switch (result.outcome) {
      case campaign::Outcome::kDetectedDdt:
        ++detected_ddt;
        break;
      case campaign::Outcome::kDetectedIcm:
      case campaign::Outcome::kDetectedCfc:
      case campaign::Outcome::kDetectedSelfCheck:
        ++detected_other;
        break;
      case campaign::Outcome::kSdc:
        ++sdc;
        break;
      case campaign::Outcome::kMasked:
        ++masked;
        break;
      case campaign::Outcome::kCrash:
      case campaign::Outcome::kHang:
        ++crash_hang;
        break;
    }
  }

  double coverage() const {
    const u32 unmasked = injected - masked;
    return unmasked > 0 ? 100.0 * static_cast<double>(detected_ddt + detected_other) /
                              static_cast<double>(unmasked)
                        : 0.0;
  }
};

/// Fault-free run with the footprint installed: pre-reservation hit rate.
/// Returns the number of PST entries reserved at load (the footprint's
/// predicted store-page count — smaller is tighter).
u32 report_prereservation(const campaign::WorkloadSetup& setup, const char* label) {
  os::OsConfig os_config = setup.os;
  os_config.static_ddt = true;
  os::Machine machine(setup.machine);
  os::GuestOs guest(machine, os_config);
  guest.load(isa::assemble(setup.source));
  for (isa::ModuleId id : setup.host_enables) guest.enable_module(id);
  guest.run();
  const auto& stats = machine.ddt()->stats();
  const double hit_rate = stats.pst_prereserved > 0
                              ? 100.0 * static_cast<double>(stats.prereserve_hits) /
                                    static_cast<double>(stats.pst_prereserved)
                              : 0.0;
  std::cout << "PST pre-reservation (" << label << "): " << stats.pst_prereserved
            << " reserved at load, " << stats.prereserve_hits << " first-touch hits ("
            << report::fmt_fixed(hit_rate, 1) << "% of reservations used), "
            << stats.footprint_checks << " accesses checked, "
            << stats.footprint_violations << " violations (clean run)\n";
  return stats.pst_prereserved;
}

}  // namespace

int main(int argc, char** argv) {
  // kmeans is the showcase: single-threaded (a register fault is never
  // masked by a context-switch restore) with statically resolved store
  // kernels the corrupted base registers feed into.  The args workload is
  // the context-sensitivity showcase: its callee accesses only resolve
  // under --context-depth > 0, so the depth-0 sweep cannot check them.
  const std::string workload = argc > 1 ? argv[1] : "kmeans";
  const u32 samples = argc > 2 ? static_cast<u32>(std::stoul(argv[2])) : 96;
  bool expect_context_gain = false;
  bool expect_field_gain = false;
  for (int i = 3; i < argc; ++i) {
    if (std::string(argv[i]) == "--expect-context-gain") expect_context_gain = true;
    if (std::string(argv[i]) == "--expect-field-gain") expect_field_gain = true;
  }

  campaign::CampaignRunner runner;
  campaign::WorkloadSetup base = campaign::make_workload(workload);
  if (std::find(base.host_enables.begin(), base.host_enables.end(), isa::ModuleId::kDdt) ==
      base.host_enables.end()) {
    base.host_enables.push_back(isa::ModuleId::kDdt);  // dynamic-only baseline
  }
  campaign::WorkloadSetup ctx0 = base;
  ctx0.os.static_ddt = true;
  ctx0.os.context_depth = 0;  // context-insensitive footprint
  campaign::WorkloadSetup field_off = base;
  field_off.os.static_ddt = true;
  field_off.os.field_sensitive = false;  // dense interval hulls
  campaign::WorkloadSetup tight = base;
  tight.os.static_ddt = true;  // default context depth, field-sensitive

  const auto golden_base = runner.cache().get(base);
  const auto golden_ctx0 = runner.cache().get(ctx0);
  const auto golden_field = runner.cache().get(field_off);
  const auto golden_tight = runner.cache().get(tight);
  if (golden_base->cycles != golden_tight->cycles ||
      golden_base->cycles != golden_ctx0->cycles ||
      golden_base->cycles != golden_field->cycles) {
    std::cerr << "golden runs diverge between DDT modes\n";
    return 1;
  }
  if (golden_tight->ddt_footprint_violations != 0 ||
      golden_ctx0->ddt_footprint_violations != 0 ||
      golden_field->ddt_footprint_violations != 0) {
    std::cerr << "static footprint false-positives on the fault-free run\n";
    return 1;
  }

  const u32 prereserved_field_off = report_prereservation(field_off, "field-off");
  const u32 prereserved_tight = report_prereservation(tight, "field-on");

  // Register faults rotate through the working registers (r8..r23) flipping
  // a page-significant bit — the corrupted base sends the next resolved
  // store pages off target.  Data faults flip one bit of a data word.
  const Cycle stride = std::max<Cycle>(1, (golden_base->cycles - 40) / samples);
  ModeTally reg_base, reg_ctx0, reg_field, reg_tight;
  ModeTally data_base, data_ctx0, data_field, data_tight;
  u32 gap = 0;          // faults only the footprint check caught
  u32 context_gain = 0; // faults only the context-sensitive footprint caught
  u32 field_gain = 0;   // faults only the field-sensitive footprint caught

  u32 index = 0;
  for (Cycle cycle = 20; cycle + 20 < golden_base->cycles; cycle += stride, ++index) {
    campaign::InjectionRecord reg_fault;
    reg_fault.target = campaign::InjectTarget::kRegisterBit;
    reg_fault.inject_cycle = cycle;
    reg_fault.reg = static_cast<u8>(8 + (index % 16));  // t0..t7, s0..s7
    reg_fault.bit = static_cast<u8>(14 + (index % 8));  // 16 KB .. 2 MB off
    reg_fault.mask = Word{1} << reg_fault.bit;
    const campaign::RunResult rb = runner.run_one(base, *golden_base, reg_fault);
    const campaign::RunResult rc = runner.run_one(ctx0, *golden_ctx0, reg_fault);
    const campaign::RunResult rf = runner.run_one(field_off, *golden_field, reg_fault);
    const campaign::RunResult rt = runner.run_one(tight, *golden_tight, reg_fault);
    reg_base.add(rb);
    reg_ctx0.add(rc);
    reg_field.add(rf);
    reg_tight.add(rt);
    if (rt.outcome == campaign::Outcome::kDetectedDdt &&
        rb.outcome != campaign::Outcome::kDetectedDdt) {
      ++gap;
    }
    if (rt.outcome == campaign::Outcome::kDetectedDdt &&
        rc.outcome != campaign::Outcome::kDetectedDdt) {
      ++context_gain;
    }
    if (rt.outcome == campaign::Outcome::kDetectedDdt &&
        rf.outcome != campaign::Outcome::kDetectedDdt) {
      ++field_gain;
    }

    if (golden_base->program.data.size() >= 4) {
      campaign::InjectionRecord data_fault;
      data_fault.target = campaign::InjectTarget::kDataWord;
      data_fault.inject_cycle = cycle;
      const u32 words = static_cast<u32>(golden_base->program.data.size() / 4);
      data_fault.addr = golden_base->program.data_base + (index % words) * 4;
      data_fault.mask = Word{1} << (index % 32);
      data_base.add(runner.run_one(base, *golden_base, data_fault));
      data_ctx0.add(runner.run_one(ctx0, *golden_ctx0, data_fault));
      data_field.add(runner.run_one(field_off, *golden_field, data_fault));
      data_tight.add(runner.run_one(tight, *golden_tight, data_fault));
    }
  }

  std::cout << "static-DDT detection study: workload=" << workload
            << " golden_cycles=" << golden_base->cycles << " stride=" << stride << "\n";

  report::Table table({"fault class", "ddt mode", "injected", "det ddt", "det other", "sdc",
                       "masked", "crash/hang", "coverage %"});
  const auto row = [&](const char* cls, const char* mode, const ModeTally& t) {
    table.row({cls, mode, std::to_string(t.injected), std::to_string(t.detected_ddt),
               std::to_string(t.detected_other), std::to_string(t.sdc),
               std::to_string(t.masked), std::to_string(t.crash_hang),
               report::fmt_fixed(t.coverage(), 1)});
  };
  row("register", "dynamic-only", reg_base);
  row("register", "static-ctx0", reg_ctx0);
  row("register", "static-field-off", reg_field);
  row("register", "static-footprint", reg_tight);
  row("data-word", "dynamic-only", data_base);
  row("data-word", "static-ctx0", data_ctx0);
  row("data-word", "static-field-off", data_field);
  row("data-word", "static-footprint", data_tight);
  table.print();
  std::cout << "faults only the footprint check detected: " << gap << "\n";
  std::cout << "faults only the context-sensitive footprint detected: " << context_gain
            << "\n";
  std::cout << "faults only the field-sensitive footprint detected: " << field_gain << "\n";

  if (auto dir = report::csv_export_dir()) {
    report::CsvWriter csv(*dir + "/ddt_static.csv",
                          {"fault_class", "mode", "injected", "det_ddt", "det_other", "sdc",
                           "masked", "crash_hang", "coverage_pct"});
    const auto csv_row = [&](const char* cls, const char* mode, const ModeTally& t) {
      csv.row({cls, mode, std::to_string(t.injected), std::to_string(t.detected_ddt),
               std::to_string(t.detected_other), std::to_string(t.sdc),
               std::to_string(t.masked), std::to_string(t.crash_hang),
               report::fmt_fixed(t.coverage(), 2)});
    };
    csv_row("register", "dynamic-only", reg_base);
    csv_row("register", "static-ctx0", reg_ctx0);
    csv_row("register", "static-field-off", reg_field);
    csv_row("register", "static-footprint", reg_tight);
    csv_row("data-word", "dynamic-only", data_base);
    csv_row("data-word", "static-ctx0", data_ctx0);
    csv_row("data-word", "static-field-off", data_field);
    csv_row("data-word", "static-footprint", data_tight);
    csv.flush();
  }

  const u32 tight_total = reg_tight.detected_ddt + data_tight.detected_ddt;
  const u32 base_total = reg_base.detected_ddt + data_base.detected_ddt;
  if (tight_total <= base_total || gap == 0) {
    std::cerr << "static footprint failed to improve on the dynamic-only DDT\n";
    return 1;
  }
  if (expect_context_gain && context_gain == 0) {
    std::cerr << "context-sensitive footprint failed to improve on depth 0\n";
    return 1;
  }
  if (expect_field_gain) {
    // Strictly higher register-fault coverage, or — at equal coverage — a
    // strictly tighter (smaller) pre-reserved page set.
    const double cov_on = reg_tight.coverage();
    const double cov_off = reg_field.coverage();
    const bool better = cov_on > cov_off ||
                        (cov_on == cov_off && prereserved_tight < prereserved_field_off);
    if (!better) {
      std::cerr << "field-sensitive footprint failed to improve on the dense hull\n";
      return 1;
    }
  }
  return 0;
}
