// Static-analysis precision study: per-workload footprint size with the
// field-sensitive strided-interval domain on vs. off (docs/analysis.md).
// Pure analysis — no simulation — so it doubles as a cheap smoke test.
// Reports, per workload and domain: footprint pages, predicted store pages,
// unresolved sites, per-site context page tables, and $sp recursion
// contexts.  The field-sensitive domain must never resolve fewer sites or
// predict more pages than the dense hull (it refines, never coarsens);
// violations fail the run.
//
//   bench_analysis_precision [--json PATH]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "campaign/workload.hpp"
#include "isa/assembler.hpp"
#include "report/table.hpp"

using namespace rse;

namespace {

struct Row {
  std::string workload;
  bool field = false;
  std::size_t pages = 0;
  std::size_t store_pages = 0;
  u32 unknown_sites = 0;
  std::size_t context_sites = 0;
  u32 sp_contexts = 0;
};

Row measure(const std::string& workload, bool field) {
  const campaign::WorkloadSetup setup = campaign::make_workload(workload);
  analysis::AnalysisOptions options;
  options.field_sensitive = field;
  const analysis::AnalysisResult result =
      analysis::analyze(isa::assemble(setup.source), options);
  Row row;
  row.workload = workload;
  row.field = field;
  row.pages = result.footprint.pages.size();
  row.store_pages = result.footprint.store_pages.size();
  row.unknown_sites = result.footprint.unknown_sites;
  row.context_sites = result.footprint.context_pages.size();
  row.sp_contexts = result.footprint.sp_contexts;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) json_path = argv[++i];
  }

  const std::vector<std::string> workloads = {"args", "stride", "calls", "kmeans",
                                              "server"};
  std::vector<Row> rows;
  for (const std::string& w : workloads) {
    rows.push_back(measure(w, /*field=*/false));
    rows.push_back(measure(w, /*field=*/true));
  }

  report::Table table({"workload", "domain", "pages", "store pages", "unknown sites",
                       "context sites", "sp contexts"});
  for (const Row& r : rows) {
    table.row({r.workload, r.field ? "field" : "dense", std::to_string(r.pages),
               std::to_string(r.store_pages), std::to_string(r.unknown_sites),
               std::to_string(r.context_sites), std::to_string(r.sp_contexts)});
  }
  table.print();

  // Refinement invariant: field-on must be pointwise no worse than field-off.
  bool ok = true;
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    const Row& dense = rows[i];
    const Row& field = rows[i + 1];
    if (field.pages > dense.pages || field.store_pages > dense.store_pages ||
        field.unknown_sites > dense.unknown_sites) {
      std::cerr << "field-sensitive domain coarsened workload '" << dense.workload
                << "' (pages " << dense.pages << " -> " << field.pages << ", stores "
                << dense.store_pages << " -> " << field.store_pages << ", unknown "
                << dense.unknown_sites << " -> " << field.unknown_sites << ")\n";
      ok = false;
    }
  }

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "{\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      os << "    {\"workload\": \"" << r.workload << "\", \"domain\": \""
         << (r.field ? "field" : "dense") << "\", \"pages\": " << r.pages
         << ", \"store_pages\": " << r.store_pages
         << ", \"unknown_sites\": " << r.unknown_sites
         << ", \"context_sites\": " << r.context_sites
         << ", \"sp_contexts\": " << r.sp_contexts << "}" << (i + 1 < rows.size() ? "," : "")
         << "\n";
    }
    os << "  ]\n}\n";
    std::ofstream out(json_path);
    out << os.str();
    if (!out) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
  }
  return ok ? 0 : 1;
}
