// Static-CFC detection study: the same next-PC-latch fault sweep run twice,
// once against the CFC's range-check baseline ("a control transfer must land
// in text") and once with the CFG-derived legal-successor table installed at
// load (docs/analysis.md).  Direct branches and jumps are fully checked
// either way; the gap is indirect control flow — a corrupted `jr $ra` return
// target that stays inside the text segment passes the range check but
// misses the statically inferred return-site set.
//
// For every inject cycle the sweep reports both outcomes plus the detection
// latency (cycles from injection to the end of the run) of detected faults.
#include <iostream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "report/table.hpp"

using namespace rse;

namespace {

struct ModeTally {
  u32 injected = 0;
  u32 detected_cfc = 0;
  u32 detected_other = 0;
  u32 sdc = 0;
  u32 masked = 0;
  u32 crash_hang = 0;
  u64 latency_sum = 0;  // inject -> run end, detected runs only

  void add(const campaign::RunResult& result, Cycle inject_cycle) {
    if (!result.fault_applied) return;
    ++injected;
    switch (result.outcome) {
      case campaign::Outcome::kDetectedCfc:
        ++detected_cfc;
        latency_sum += result.cycles > inject_cycle ? result.cycles - inject_cycle : 0;
        break;
      case campaign::Outcome::kDetectedIcm:
      case campaign::Outcome::kDetectedDdt:
      case campaign::Outcome::kDetectedSelfCheck:
        ++detected_other;
        break;
      case campaign::Outcome::kSdc:
        ++sdc;
        break;
      case campaign::Outcome::kMasked:
        ++masked;
        break;
      case campaign::Outcome::kCrash:
      case campaign::Outcome::kHang:
        ++crash_hang;
        break;
    }
  }

  double coverage() const {
    const u32 unmasked = injected - masked;
    return unmasked > 0 ? 100.0 * static_cast<double>(detected_cfc + detected_other) /
                              static_cast<double>(unmasked)
                        : 0.0;
  }
  double mean_latency() const {
    return detected_cfc > 0 ? static_cast<double>(latency_sum) / detected_cfc : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "calls";
  const Cycle stride = argc > 2 ? std::stoull(argv[2]) : 16;

  campaign::CampaignRunner runner;
  campaign::WorkloadSetup base = campaign::make_workload(workload);
  campaign::WorkloadSetup tight = base;
  tight.os.static_cfc = true;

  const auto golden_base = runner.cache().get(base);
  const auto golden_tight = runner.cache().get(tight);
  if (golden_base->cycles != golden_tight->cycles) {
    std::cerr << "golden runs diverge between CFC modes\n";
    return 1;
  }

  // One-shot corruption of the next-PC latch: the first control-flow
  // instruction to commit after inject_cycle lands mask bytes off target.
  // The small mask keeps the bogus landing inside text — the case a range
  // check cannot see.
  campaign::InjectionRecord record;
  record.target = campaign::InjectTarget::kRegisterBit;
  record.reg = campaign::kPcPseudoReg;
  record.mask = 0x8;

  ModeTally range, table_mode;
  u32 gap = 0;  // faults only the static table caught
  for (Cycle cycle = 20; cycle + 20 < golden_base->cycles; cycle += stride) {
    record.inject_cycle = cycle;
    const campaign::RunResult rb = runner.run_one(base, *golden_base, record);
    const campaign::RunResult rt = runner.run_one(tight, *golden_tight, record);
    range.add(rb, cycle);
    table_mode.add(rt, cycle);
    if (rt.outcome == campaign::Outcome::kDetectedCfc &&
        rb.outcome != campaign::Outcome::kDetectedCfc) {
      ++gap;
    }
  }

  std::cout << "static-CFC detection study: workload=" << workload
            << " golden_cycles=" << golden_base->cycles << " mask=0x" << std::hex
            << record.mask << std::dec << " stride=" << stride << "\n";

  report::Table table({"cfc mode", "injected", "det cfc", "det other", "sdc", "masked",
                       "crash/hang", "coverage %", "mean latency"});
  const auto row = [&](const char* name, const ModeTally& t) {
    table.row({name, std::to_string(t.injected), std::to_string(t.detected_cfc),
               std::to_string(t.detected_other), std::to_string(t.sdc),
               std::to_string(t.masked), std::to_string(t.crash_hang),
               report::fmt_fixed(t.coverage(), 1), report::fmt_fixed(t.mean_latency(), 1)});
  };
  row("range-check", range);
  row("static-table", table_mode);
  table.print();
  std::cout << "faults only the static table detected: " << gap << "\n";

  if (table_mode.detected_cfc <= range.detected_cfc || gap == 0) {
    std::cerr << "static successor table failed to improve on the range check\n";
    return 1;
  }
  return 0;
}
