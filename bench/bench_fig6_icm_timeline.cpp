// Figure 6 reproduction: the ICM execution timeline.  The same checked
// instruction is executed twice, with enough spacing (a divider chain) that
// the first check completes before the second begins: the first takes the
// Icm_Cache-miss path (MAU fetch from CheckerMemory), the second the hit
// path whose module latency must be exactly 2 cycles (acquire at t+2,
// copies at t+3, comparison + IOQ write at t+4; commit sees it at t+5).
#include <iostream>

#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "report/table.hpp"

using namespace rse;

int main() {
  std::cout << "=== Figure 6: Timeline for ICM execution ===\n"
            << "(paper reference, cache hit: fetch at t, rename/ROB at t+1, RSE fetch\n"
            << " queue at t+2, copies to comparator at t+3, IOQ written at t+4,\n"
            << " commit sees the result at t+5; a miss adds a pipelined memory\n"
            << " access through the MAU)\n\n";

  os::MachineConfig config;
  config.framework_present = true;
  os::Machine machine(config);
  os::GuestOs guest(machine);
  guest.load(isa::assemble(R"(
.text
main:
  chk frame, 1, nblk, r0, 1
  li t0, 0
again:
  chk icm, 0, blk, r0, 0
  addi t0, t0, 1
  # spacing: the serializing syscall drains the pipeline, so the second
  # encounter of the checked instruction starts with a quiet module and a
  # warm Icm_Cache
  li v0, 4
  syscall
  li t1, 2
  blt t0, t1, again
  li a0, 0
  li v0, 1
  syscall
)"));
  guest.run();

  const modules::IcmStats& stats = machine.icm()->stats();
  report::Table table({"Path", "module acquires instr (cycle)", "IOQ written (cycle)",
                       "module latency (cycles)"});
  table.row({"Icm_Cache miss (1st check)", std::to_string(stats.first_miss_acquired),
             std::to_string(stats.first_miss_completed),
             std::to_string(stats.first_miss_completed - stats.first_miss_acquired)});
  table.row({"Icm_Cache hit (2nd check)", std::to_string(stats.first_hit_acquired),
             std::to_string(stats.first_hit_completed),
             std::to_string(stats.first_hit_completed - stats.first_hit_acquired)});
  table.print();

  std::cout << "\nIcm_Cache: " << stats.cache_hits << " hit(s), " << stats.cache_misses
            << " miss(es); commit stalled "
            << machine.core().stats().chk_commit_stall_cycles << " cycle(s) total.\n";
  const Cycle hit_latency = stats.first_hit_completed - stats.first_hit_acquired;
  std::cout << (hit_latency == 2
                    ? "Hit-path module latency of 2 cycles matches Figure 6 (t+2 -> t+4).\n"
                    : "WARNING: hit-path latency deviates from the Figure 6 timeline!\n");
  return 0;
}
