// Hardware overhead estimates (section 3.1 footnote 4 and section 5.3):
// flip-flop/gate cost of the framework's input interface as a function of
// machine parameters, and the MLR module's datapath inventory.
#include <iostream>

#include "report/table.hpp"
#include "rse/hw_cost.hpp"

using namespace rse;

int main() {
  std::cout << "=== Hardware overhead of the RSE framework ===\n"
            << "(paper reference: 2560 flip-flops and 12,800 gates for the input\n"
            << " queues and MUXes of a 32-bit, 16-entry-ROB machine)\n\n";

  report::Table table({"ROB entries", "word bits", "flip-flops", "MUX gates"});
  for (const u32 entries : {8u, 16u, 32u, 64u}) {
    for (const u32 bits : {32u, 64u}) {
      engine::HwCostConfig config;
      config.entries_per_queue = entries;
      config.bits_per_entry = bits;
      const engine::QueueCost cost = engine::input_interface_cost(config);
      table.row({std::to_string(entries), std::to_string(bits),
                 std::to_string(cost.flip_flops), std::to_string(cost.mux_gates)});
    }
  }
  table.print();

  const engine::QueueCost paper = engine::input_interface_cost(engine::HwCostConfig{});
  std::cout << "\nPaper configuration (5 queues x 16 entries x 32 bits): "
            << paper.flip_flops << " flip-flops, " << paper.mux_gates << " gates\n";

  std::cout << "\n=== MLR module hardware (section 5.3) ===\n";
  const engine::MlrHwCost mlr = engine::mlr_hw_cost();
  report::Table mlr_table({"Resource", "Count"});
  mlr_table.row({"PI datapath word registers", std::to_string(mlr.pi_registers)});
  mlr_table.row({"PI datapath adders", std::to_string(mlr.pi_adders)});
  mlr_table.row({"header memory block (bytes)", std::to_string(mlr.header_block_bytes)});
  mlr_table.row({"GOT buffer (bytes)", std::to_string(mlr.got_buffer_bytes)});
  mlr_table.row({"PLT buffer (bytes)", std::to_string(mlr.plt_buffer_bytes)});
  mlr_table.row({"GOT/PLT adders (4 parallel + 1 addr)", std::to_string(mlr.pd_adders)});
  mlr_table.row({"GOT/PLT word registers", std::to_string(mlr.pd_registers)});
  mlr_table.print();
  return 0;
}
