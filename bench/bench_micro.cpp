// Microbenchmarks of the simulator's hot paths (google-benchmark): cache
// lookups, DDM operations, assembly, and whole-machine cycle throughput.
#include <benchmark/benchmark.h>

#include "isa/assembler.hpp"
#include "mem/cache.hpp"
#include "modules/ddt/ddt.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "workloads/workloads.hpp"

using namespace rse;

namespace {

class NullLevel : public mem::MemLevel {
 public:
  Cycle access(Cycle now, Addr, u32, bool) override { return now + 30; }
};

void BM_CacheHit(benchmark::State& state) {
  NullLevel next;
  mem::Cache cache({"bm", 8 * 1024, 1, 32, 1}, next);
  cache.access(0, 0x100, 4, false);
  Cycle now = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(now++, 0x100, 4, false));
  }
}
BENCHMARK(BM_CacheHit);

void BM_CacheMissWithEviction(benchmark::State& state) {
  NullLevel next;
  mem::Cache cache({"bm", 8 * 1024, 2, 32, 1}, next);
  Cycle now = 0;
  Addr addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(++now, addr, 4, true));
    addr += 8 * 1024;  // always the same set, always evicting dirty lines
  }
}
BENCHMARK(BM_CacheMissWithEviction);

void BM_DdtStoreCommit(benchmark::State& state) {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  engine::Framework fw{memory, bus, 16};
  modules::DdtModule ddt(fw);
  ddt.set_enabled(true);
  ddt.set_save_page_handler([](u32, ThreadId, Cycle) { return Cycle{0}; });
  engine::CommitInfo info;
  info.instr.op = isa::Op::kSw;
  ThreadId thread = 0;
  Addr addr = 0x1000;
  for (auto _ : state) {
    info.thread = thread;
    info.eff_addr = addr;
    benchmark::DoNotOptimize(ddt.on_store_commit(info, 0));
    thread = (thread + 1) % 8;  // ownership ping-pong: worst case
    addr = 0x1000 + (addr + 4096) % (64 * 4096);
  }
}
BENCHMARK(BM_DdtStoreCommit);

void BM_DependentClosure(benchmark::State& state) {
  mem::MainMemory memory;
  mem::BusArbiter bus{mem::BusTiming{19, 3, 8}};
  engine::Framework fw{memory, bus, 16};
  modules::DdtModule ddt(fw);
  ddt.set_enabled(true);
  ddt.set_save_page_handler([](u32, ThreadId, Cycle) { return Cycle{0}; });
  // chain 0->1->2->...->31
  for (ThreadId t = 0; t + 1 < 32; ++t) {
    engine::CommitInfo store;
    store.instr.op = isa::Op::kSw;
    store.thread = t;
    store.eff_addr = 0x1000u * (t + 1);
    ddt.on_store_commit(store, 0);
    engine::CommitInfo load;
    load.instr.op = isa::Op::kLw;
    load.thread = t + 1;
    load.eff_addr = 0x1000u * (t + 1);
    ddt.on_commit(load, 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddt.dependent_closure(0));
  }
}
BENCHMARK(BM_DependentClosure);

void BM_Assemble(benchmark::State& state) {
  workloads::KMeansParams params;
  params.patterns = 50;
  const std::string source = workloads::kmeans_source(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::assemble(source));
  }
}
BENCHMARK(BM_Assemble);

void BM_MachineCycleThroughput(benchmark::State& state) {
  // Whole-machine simulation speed in guest cycles per host second.
  os::MachineConfig config;
  config.framework_present = state.range(0) != 0;
  os::Machine machine(config);
  os::GuestOs guest(machine);
  guest.load(isa::assemble(R"(
.text
main:
spin:
  addi t0, t0, 1
  addi t1, t1, 2
  add t2, t0, t1
  b spin
)"));
  for (auto _ : state) {
    guest.step();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MachineCycleThroughput)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
