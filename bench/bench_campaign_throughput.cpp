// Campaign engine scaling: runs/sec of the same fixed campaign at
// increasing --jobs, against the --jobs 1 baseline.  Simulations are
// independent and embarrassingly parallel, so on an N-core host throughput
// should scale near-linearly until the worker count passes the core count.
// The golden-run cache is shared across sweep points, so only the first
// campaign pays for the fault-free baseline.
//
// On top of the scaling sweep the bench proves the execution-mode
// optimizations end to end and records the trajectory in
// BENCH_campaign.json:
//  - --fast-forward must reproduce the classic digest byte-for-byte;
//  - checkpoint-fork (--snapshot-fork) must reproduce the classic digest
//    byte-for-byte AND deliver >= 2x end-to-end wall-clock speedup on a
//    register-fault campaign with a late injection window (the regime the
//    mode exists for: every from-reset run pays the whole prefix, every
//    forked run only the post-injection suffix);
//  - with --expect-ci, a sequential-refinement campaign must actually grow
//    the run set and leave no stratum's Wilson interval straddling the
//    threshold (unless the run cap was hit), jobs-invariantly.
//
//   bench_campaign_throughput [workload] [runs] [--smoke] [--expect-ci]
//                             [--json PATH]
#include <algorithm>
#include <array>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/stats.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rse;

int main(int argc, char** argv) {
  campaign::CampaignSpec spec;
  bool smoke = false;
  bool expect_ci = false;
  std::string json_path = "BENCH_campaign.json";
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg == "--expect-ci") expect_ci = true;
    else if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    else positional.push_back(arg);
  }
  spec.workload = !positional.empty() ? positional[0] : "loop";
  spec.runs = positional.size() > 1 ? static_cast<u32>(std::stoul(positional[1]))
                                    : (smoke ? 48u : 96u);
  spec.seed = 7;

  // Sweep at least {1, 2, 4} even on small hosts: oversubscribed workers are
  // harmless, and the digest comparison across job counts is the
  // determinism proof regardless of physical core count.
  const u32 hw = std::max(1u, std::thread::hardware_concurrency());
  const u32 top = std::max(hw, 4u);
  std::vector<u32> job_counts{1};
  for (u32 j = 2; j <= top; j *= 2) job_counts.push_back(j);
  if (job_counts.back() != top) job_counts.push_back(top);

  std::cout << "campaign throughput scaling: workload=" << spec.workload
            << " runs=" << spec.runs << " hardware threads=" << hw << "\n";

  campaign::GoldenCache cache;
  campaign::CampaignRunner runner(&cache);
  std::ostringstream json;
  json << "{\n  \"bench\": \"campaign_throughput\",\n  \"workload\": \"" << spec.workload
       << "\",\n  \"runs\": " << spec.runs << ",\n  \"jobs_sweep\": [\n";

  report::Table table({"jobs", "runs/sec", "wall s", "speedup", "digest match"});
  std::string baseline_digest;
  double baseline_rate = 0;
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t p = 0; p < job_counts.size(); ++p) {
    const u32 jobs = job_counts[p];
    spec.jobs = jobs;
    const campaign::CampaignReport report = runner.run(spec);
    const std::string digest = campaign::deterministic_digest(report);
    if (jobs == 1) {
      baseline_digest = digest;
      baseline_rate = report.runs_per_second;
    }
    const double speedup = baseline_rate > 0 ? report.runs_per_second / baseline_rate : 0;
    const bool match = digest == baseline_digest;
    table.row({std::to_string(jobs), report::fmt_fixed(report.runs_per_second, 1),
               report::fmt_fixed(report.wall_seconds, 2), report::fmt_fixed(speedup, 2),
               match ? "yes" : "NO"});
    csv_rows.push_back({std::to_string(jobs), report::fmt_fixed(report.runs_per_second, 3),
                        report::fmt_fixed(report.wall_seconds, 4),
                        report::fmt_fixed(speedup, 3), match ? "1" : "0"});
    json << "    {\"jobs\": " << jobs << ", \"runs_per_sec\": "
         << report::fmt_fixed(report.runs_per_second, 3) << ", \"wall_s\": "
         << report::fmt_fixed(report.wall_seconds, 4) << ", \"speedup\": "
         << report::fmt_fixed(speedup, 3) << ", \"digest_match\": "
         << (match ? "true" : "false") << "}" << (p + 1 < job_counts.size() ? "," : "")
         << "\n";
    if (!match) {
      std::cerr << "DETERMINISM VIOLATION at jobs=" << jobs << "\n";
      return 1;
    }
  }
  table.print();
  std::cout << "(golden cache: " << cache.misses() << " simulated, " << cache.hits()
            << " reused)\n";
  json << "  ],\n";

  // --fast-forward replays eligible fault-free prefixes through the exec/
  // fast engine (docs/execution.md); classification must not move at all, so
  // its digest has to match the classic jobs sweep byte-for-byte.
  spec.jobs = 4;
  spec.fast_forward = true;
  const std::string ff_digest = campaign::deterministic_digest(runner.run(spec));
  spec.fast_forward = false;
  if (ff_digest != baseline_digest) {
    std::cerr << "FAST-FORWARD DIGEST MISMATCH: --fast-forward changed campaign "
                 "classification\n";
    return 1;
  }
  std::cout << "--fast-forward digest identical to the classic campaign\n";

  // Checkpoint-fork on its home turf: register faults drawn from a late
  // injection window, so a from-reset run pays the whole prefix and a
  // forked run only the suffix.  The chain (built inside run(), counted in
  // its wall clock) is one extra from-reset pass amortized over every run.
  // Digest equality is the correctness proof; the 2x floor is the
  // acceptance bar for the mode being worth its snapshot bytes.
  {
    constexpr double kForkFloor = 2.0;
    campaign::CampaignSpec fork_spec;
    fork_spec.workload = "kmeans";
    fork_spec.runs = smoke ? 32 : 48;
    fork_spec.seed = 7;
    fork_spec.jobs = 4;
    fork_spec.targets = {campaign::InjectTarget::kRegisterBit};
    fork_spec.window_lo = 0.85;
    fork_spec.window_hi = 1.0;
    fork_spec.snapshot_buckets = 16;

    fork_spec.snapshot_fork = false;
    (void)runner.cache().get(campaign::make_workload(fork_spec.workload));  // warm golden
    const campaign::CampaignReport classic = runner.run(fork_spec);
    fork_spec.snapshot_fork = true;
    const campaign::CampaignReport forked = runner.run(fork_spec);

    const bool match = campaign::deterministic_digest(classic) ==
                       campaign::deterministic_digest(forked);
    const double speedup =
        forked.wall_seconds > 0 ? classic.wall_seconds / forked.wall_seconds : 0;
    std::cout << "checkpoint-fork (kmeans, reg faults, window 0.85:1.0): classic "
              << report::fmt_fixed(classic.wall_seconds, 2) << "s, forked "
              << report::fmt_fixed(forked.wall_seconds, 2) << "s, speedup "
              << report::fmt_fixed(speedup, 2) << "x, digest "
              << (match ? "identical" : "MISMATCH") << "\n";
    json << "  \"checkpoint_fork\": {\"workload\": \"kmeans\", \"runs\": " << fork_spec.runs
         << ", \"window\": [0.85, 1.0], \"classic_wall_s\": "
         << report::fmt_fixed(classic.wall_seconds, 4) << ", \"forked_wall_s\": "
         << report::fmt_fixed(forked.wall_seconds, 4) << ", \"speedup\": "
         << report::fmt_fixed(speedup, 3) << ", \"floor\": " << kForkFloor
         << ", \"digest_match\": " << (match ? "true" : "false") << "},\n";
    if (!match) {
      std::cerr << "CHECKPOINT-FORK DIGEST MISMATCH: --snapshot-fork changed campaign "
                   "classification\n";
      return 1;
    }
    if (speedup < kForkFloor) {
      std::cerr << "checkpoint-fork speedup " << speedup << "x is below the " << kForkFloor
                << "x floor\n";
      return 1;
    }
  }

  // Memory-word fast-forward end to end: instruction-/data-word faults drawn
  // from a late window, so every classic run pays the whole prefix cycle-
  // accurately while a fast-forwarded run pays one shared instrumented
  // replay plus a fast-engine prefix per run.  Digest equality is the
  // correctness proof; the 1.5x floor is the acceptance bar for extending
  // eligibility beyond register bits.
  {
    constexpr double kMemFfFloor = 1.5;
    campaign::CampaignSpec mem_spec;
    mem_spec.workload = "kmeans";
    mem_spec.runs = smoke ? 32 : 48;
    mem_spec.seed = 7;
    mem_spec.jobs = 4;
    mem_spec.targets = {campaign::InjectTarget::kInstructionWord,
                        campaign::InjectTarget::kDataWord};
    mem_spec.window_lo = 0.85;
    mem_spec.window_hi = 1.0;

    const campaign::CampaignReport classic = runner.run(mem_spec);
    mem_spec.fast_forward = true;
    const campaign::CampaignReport fast = runner.run(mem_spec);
    const campaign::FastForwardStats ff = runner.fast_forward_stats();

    const bool match = campaign::deterministic_digest(classic) ==
                       campaign::deterministic_digest(fast);
    const double speedup =
        fast.wall_seconds > 0 ? classic.wall_seconds / fast.wall_seconds : 0;
    std::cout << "memory-word fast-forward (kmeans, instr+data faults, window 0.85:1.0): "
              << "classic " << report::fmt_fixed(classic.wall_seconds, 2) << "s, fast "
              << report::fmt_fixed(fast.wall_seconds, 2) << "s, speedup "
              << report::fmt_fixed(speedup, 2) << "x, " << ff.fast << " fast / "
              << ff.fallbacks() << " fallback, digest "
              << (match ? "identical" : "MISMATCH") << "\n";
    json << "  \"fast_forward_memory\": {\"workload\": \"kmeans\", \"runs\": "
         << mem_spec.runs << ", \"window\": [0.85, 1.0], \"classic_wall_s\": "
         << report::fmt_fixed(classic.wall_seconds, 4) << ", \"fast_wall_s\": "
         << report::fmt_fixed(fast.wall_seconds, 4) << ", \"speedup\": "
         << report::fmt_fixed(speedup, 3) << ", \"floor\": " << kMemFfFloor
         << ", \"fast_runs\": " << ff.fast << ", \"fallback_runs\": " << ff.fallbacks()
         << ", \"digest_match\": " << (match ? "true" : "false") << "},\n";
    if (!match) {
      std::cerr << "MEMORY-WORD FAST-FORWARD DIGEST MISMATCH: --fast-forward changed "
                   "campaign classification on instr/data faults\n";
      return 1;
    }
    if (ff.fast == 0) {
      std::cerr << "memory-word fast-forward took zero fast paths — eligibility "
                   "has regressed\n";
      return 1;
    }
    if (speedup < kMemFfFloor) {
      std::cerr << "memory-word fast-forward speedup " << speedup << "x is below the "
                << kMemFfFloor << "x floor\n";
      return 1;
    }
  }

  // Sequential refinement: the refined campaign must grow the run set
  // deterministically and leave every stratum's interval clear of the
  // threshold (or prove it hit the cap), at any jobs count.
  if (expect_ci) {
    campaign::CampaignSpec ci_spec;
    ci_spec.workload = spec.workload;
    ci_spec.runs = 16;
    ci_spec.seed = 7;
    ci_spec.ci_threshold = 0.05;
    ci_spec.ci_batch = 16;
    ci_spec.ci_max_runs = smoke ? 64 : 128;
    ci_spec.jobs = 1;
    const campaign::CampaignReport refined = runner.run(ci_spec);
    ci_spec.jobs = 4;
    const campaign::CampaignReport refined4 = runner.run(ci_spec);
    const bool jobs_invariant = campaign::deterministic_digest(refined) ==
                                campaign::deterministic_digest(refined4);
    const u32 total = static_cast<u32>(refined.results.size());
    const bool grew = total > 16;
    const bool capped = total >= ci_spec.ci_max_runs;
    const bool resolved =
        campaign::strata_needing_refinement(refined.by_outcome, total, ci_spec.ci_threshold)
            .empty();
    std::cout << "ci refinement: 16 -> " << total << " runs, "
              << (resolved ? "all strata resolved" : capped ? "run cap hit" : "UNRESOLVED")
              << ", jobs-invariant " << (jobs_invariant ? "yes" : "NO") << "\n";
    json << "  \"ci_refinement\": {\"threshold\": 0.05, \"initial_runs\": 16, "
         << "\"refined_runs\": " << total << ", \"resolved\": "
         << (resolved ? "true" : "false") << ", \"capped\": " << (capped ? "true" : "false")
         << ", \"jobs_invariant\": " << (jobs_invariant ? "true" : "false") << "},\n";
    if (!grew || (!resolved && !capped) || !jobs_invariant) {
      std::cerr << "CI REFINEMENT FAILED: grew=" << grew << " resolved=" << resolved
                << " capped=" << capped << " jobs_invariant=" << jobs_invariant << "\n";
      return 1;
    }
  }

  json << "  \"digest_match\": true\n}\n";
  std::ofstream out(json_path);
  out << json.str();
  if (!out) {
    std::cerr << "failed to write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << "\n";

  if (auto dir = report::csv_export_dir()) {
    report::CsvWriter csv(*dir + "/campaign_throughput.csv",
                          {"jobs", "runs_per_sec", "wall_s", "speedup", "digest_match"});
    for (auto& row : csv_rows) csv.row(std::move(row));
    csv.flush();
  }

  if (smoke) return 0;  // the footprint-mode sweep below is the heavy part

  // Same determinism proof with the static DDT footprint in the loop: the
  // analyzer runs at load in every worker, so the digest must still be a
  // pure function of (spec, seed) — never of scheduling.  The analyzer
  // modes swept cross {flat, summaries at depth 0, summaries at depth 1}
  // with the field-sensitive domain on and off.  All digests must differ
  // pairwise (mode, depth, and domain are all part of the digest header —
  // each checks a different site/page set) but be jobs-invariant within a
  // mode.
  spec.static_ddt = true;
  spec.runs = std::min(spec.runs, 48u);
  struct FootprintMode {
    const char* label;
    bool summaries;
    u32 context_depth;
    bool field_sensitive;
  };
  const FootprintMode modes[] = {
      {"static-ddt-flat", false, 1, false},
      {"static-ddt-summary-ctx0", true, 0, false},
      {"static-ddt-summary-ctx1", true, 1, false},
      {"static-ddt-flat-field", false, 1, true},
      {"static-ddt-summary-ctx0-field", true, 0, true},
      {"static-ddt-summary-ctx1-field", true, 1, true},
  };
  std::vector<std::string> mode_digests;
  for (const FootprintMode& mode : modes) {
    spec.footprint_summaries = mode.summaries;
    spec.context_depth = mode.context_depth;
    spec.field_sensitive = mode.field_sensitive;
    std::string footprint_digest;
    for (const u32 jobs : {1u, 4u, 8u}) {
      spec.jobs = jobs;
      const std::string digest = campaign::deterministic_digest(runner.run(spec));
      if (jobs == 1) {
        footprint_digest = digest;
      } else if (digest != footprint_digest) {
        std::cerr << "DETERMINISM VIOLATION (" << mode.label << ") at jobs=" << jobs
                  << "\n";
        return 1;
      }
    }
    std::cout << mode.label << " digest identical across jobs {1, 4, 8}\n";
    for (const std::string& other : mode_digests) {
      if (footprint_digest == other) {
        std::cerr << "two footprint modes produced identical digests — the mode "
                     "or depth flag is not reaching the digest (" << mode.label
                  << ")\n";
        return 1;
      }
    }
    mode_digests.push_back(footprint_digest);
  }
  return 0;
}
