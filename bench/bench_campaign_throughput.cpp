// Campaign engine scaling: runs/sec of the same fixed campaign at
// increasing --jobs, against the --jobs 1 baseline.  Simulations are
// independent and embarrassingly parallel, so on an N-core host throughput
// should scale near-linearly until the worker count passes the core count.
// The golden-run cache is shared across sweep points, so only the first
// campaign pays for the fault-free baseline.
#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "campaign/runner.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace rse;

int main(int argc, char** argv) {
  campaign::CampaignSpec spec;
  spec.workload = argc > 1 ? argv[1] : "loop";
  spec.runs = argc > 2 ? static_cast<u32>(std::stoul(argv[2])) : 96;
  spec.seed = 7;

  // Sweep at least {1, 2, 4} even on small hosts: oversubscribed workers are
  // harmless, and the digest comparison across job counts is the
  // determinism proof regardless of physical core count.
  const u32 hw = std::max(1u, std::thread::hardware_concurrency());
  const u32 top = std::max(hw, 4u);
  std::vector<u32> job_counts{1};
  for (u32 j = 2; j <= top; j *= 2) job_counts.push_back(j);
  if (job_counts.back() != top) job_counts.push_back(top);

  std::cout << "campaign throughput scaling: workload=" << spec.workload
            << " runs=" << spec.runs << " hardware threads=" << hw << "\n";

  campaign::GoldenCache cache;
  campaign::CampaignRunner runner(&cache);

  report::Table table({"jobs", "runs/sec", "wall s", "speedup", "digest match"});
  std::string baseline_digest;
  double baseline_rate = 0;
  std::vector<std::vector<std::string>> csv_rows;
  for (const u32 jobs : job_counts) {
    spec.jobs = jobs;
    const campaign::CampaignReport report = runner.run(spec);
    const std::string digest = campaign::deterministic_digest(report);
    if (jobs == 1) {
      baseline_digest = digest;
      baseline_rate = report.runs_per_second;
    }
    const double speedup = baseline_rate > 0 ? report.runs_per_second / baseline_rate : 0;
    const bool match = digest == baseline_digest;
    table.row({std::to_string(jobs), report::fmt_fixed(report.runs_per_second, 1),
               report::fmt_fixed(report.wall_seconds, 2), report::fmt_fixed(speedup, 2),
               match ? "yes" : "NO"});
    csv_rows.push_back({std::to_string(jobs), report::fmt_fixed(report.runs_per_second, 3),
                        report::fmt_fixed(report.wall_seconds, 4),
                        report::fmt_fixed(speedup, 3), match ? "1" : "0"});
    if (!match) {
      std::cerr << "DETERMINISM VIOLATION at jobs=" << jobs << "\n";
      return 1;
    }
  }
  table.print();
  std::cout << "(golden cache: " << cache.misses() << " simulated, " << cache.hits()
            << " reused)\n";

  // --fast-forward replays eligible fault-free prefixes through the exec/
  // fast engine (docs/execution.md); classification must not move at all, so
  // its digest has to match the classic jobs sweep byte-for-byte.
  spec.jobs = 4;
  spec.fast_forward = true;
  const std::string ff_digest = campaign::deterministic_digest(runner.run(spec));
  spec.fast_forward = false;
  if (ff_digest != baseline_digest) {
    std::cerr << "FAST-FORWARD DIGEST MISMATCH: --fast-forward changed campaign "
                 "classification\n";
    return 1;
  }
  std::cout << "--fast-forward digest identical to the classic campaign\n";

  if (auto dir = report::csv_export_dir()) {
    report::CsvWriter csv(*dir + "/campaign_throughput.csv",
                          {"jobs", "runs_per_sec", "wall_s", "speedup", "digest_match"});
    for (auto& row : csv_rows) csv.row(std::move(row));
    csv.flush();
  }

  // Same determinism proof with the static DDT footprint in the loop: the
  // analyzer runs at load in every worker, so the digest must still be a
  // pure function of (spec, seed) — never of scheduling.  The analyzer
  // modes swept cross {flat, summaries at depth 0, summaries at depth 1}
  // with the field-sensitive domain on and off.  All digests must differ
  // pairwise (mode, depth, and domain are all part of the digest header —
  // each checks a different site/page set) but be jobs-invariant within a
  // mode.
  spec.static_ddt = true;
  spec.runs = std::min(spec.runs, 48u);
  struct FootprintMode {
    const char* label;
    bool summaries;
    u32 context_depth;
    bool field_sensitive;
  };
  const FootprintMode modes[] = {
      {"static-ddt-flat", false, 1, false},
      {"static-ddt-summary-ctx0", true, 0, false},
      {"static-ddt-summary-ctx1", true, 1, false},
      {"static-ddt-flat-field", false, 1, true},
      {"static-ddt-summary-ctx0-field", true, 0, true},
      {"static-ddt-summary-ctx1-field", true, 1, true},
  };
  std::vector<std::string> mode_digests;
  for (const FootprintMode& mode : modes) {
    spec.footprint_summaries = mode.summaries;
    spec.context_depth = mode.context_depth;
    spec.field_sensitive = mode.field_sensitive;
    std::string footprint_digest;
    for (const u32 jobs : {1u, 4u, 8u}) {
      spec.jobs = jobs;
      const std::string digest = campaign::deterministic_digest(runner.run(spec));
      if (jobs == 1) {
        footprint_digest = digest;
      } else if (digest != footprint_digest) {
        std::cerr << "DETERMINISM VIOLATION (" << mode.label << ") at jobs=" << jobs
                  << "\n";
        return 1;
      }
    }
    std::cout << mode.label << " digest identical across jobs {1, 4, 8}\n";
    for (const std::string& other : mode_digests) {
      if (footprint_digest == other) {
        std::cerr << "two footprint modes produced identical digests — the mode "
                     "or depth flag is not reaching the digest (" << mode.label
                  << ")\n";
        return 1;
      }
    }
    mode_digests.push_back(footprint_digest);
  }
  return 0;
}
