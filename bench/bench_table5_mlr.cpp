// Table 5 reproduction: software TRR vs hardware MLR GOT/PLT randomization
// across GOT sizes, plus the fixed position-independent randomization cost
// of section 5.3.
#include <iostream>

#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "report/table.hpp"
#include "workloads/workloads.hpp"

using namespace rse;

namespace {

struct RunResult {
  Cycle cycles = 0;
  u64 instructions = 0;  // committed instructions including CHKs
};

RunResult run(const std::string& source) {
  os::MachineConfig config;
  config.framework_present = true;
  os::Machine machine(config);
  os::GuestOs guest(machine);
  guest.load(isa::assemble(source));
  guest.run();
  if (guest.exit_code() != 0) std::cerr << "MLR program failed\n";
  return RunResult{machine.now(),
                   machine.core().stats().instructions + machine.core().stats().chk_committed};
}

}  // namespace

int main() {
  std::cout << "=== Table 5: Performance of the MLR module ===\n"
            << "(paper reference: cycle improvement 18-30% growing with GOT size;\n"
            << " instruction reduction 34%->81%; TRR instructions grow linearly,\n"
            << " RSE instructions stay flat)\n\n";

  report::Table table({"GOT entries", "TRR #cycles", "RSE #cycles", "Improvement",
                       "TRR #instr", "RSE #instr", "Improvement"});
  for (u32 entries : {128u, 256u, 384u, 512u, 640u, 768u, 896u, 1024u}) {
    const workloads::MlrProgParams params{entries};
    const RunResult trr = run(workloads::trr_software_source(params));
    const RunResult mlr = run(workloads::mlr_rse_source(params));
    const double cycle_gain =
        1.0 - static_cast<double>(mlr.cycles) / static_cast<double>(trr.cycles);
    const double instr_gain =
        1.0 - static_cast<double>(mlr.instructions) / static_cast<double>(trr.instructions);
    table.row({std::to_string(entries), std::to_string(trr.cycles),
               std::to_string(mlr.cycles), report::fmt_pct(cycle_gain, 0),
               std::to_string(trr.instructions), std::to_string(mlr.instructions),
               report::fmt_pct(instr_gain, 0)});
  }
  table.print();

  // Section 5.3: the fixed penalty of position-independent randomization.
  std::cout << "\n--- Position-independent randomization (paper: fixed 56 cycles) ---\n";
  os::MachineConfig config;
  config.framework_present = true;
  os::Machine machine(config);
  os::GuestOs guest(machine);
  guest.load(isa::assemble(R"(
.data
.align 4
hdr:     .word 0x400000, 4096, 2048, 1024, 0x60000000, 0x7FFF0000, 0x10100000
results: .space 12
.text
main:
  chk frame, 1, nblk, r0, 2
  la t0, hdr
  chk mlr, 3, nblk, t0, 0
  li t1, 28
  chk mlr, 4, nblk, t1, 0
  la t2, results
  chk mlr, 5, blk, t2, 0
  li a0, 0
  li v0, 1
  syscall
)"));
  guest.run();
  std::cout << "PI randomization took " << machine.mlr()->stats().last_op_cycles
            << " cycles (module-internal, header parse + 3 adders + result writeback)\n";
  return 0;
}
