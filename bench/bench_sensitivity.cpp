// Design-space sensitivity: the framework's input queues and IOQ scale with
// the re-order buffer (one entry per RUU slot, section 3.1), so RUU sizing
// trades hardware cost (footnote 4 formulas) against how well the window
// absorbs blocking-CHECK latency.  This bench sweeps the RUU size and
// reports both sides of that trade for the ICM-instrumented kMeans.
#include <iostream>

#include "isa/assembler.hpp"
#include "os/guest_os.hpp"
#include "os/machine.hpp"
#include "report/table.hpp"
#include "rse/hw_cost.hpp"
#include "workloads/workloads.hpp"

using namespace rse;

namespace {

Cycle run(const std::string& source, u32 ruu, bool framework) {
  os::MachineConfig config;
  config.framework_present = framework;
  config.core.ruu_size = ruu;
  config.core.lsq_size = ruu / 2;
  os::Machine machine(config);
  os::GuestOs guest(machine);
  guest.load(isa::assemble(source));
  guest.run();
  if (guest.exit_code() != 0) std::cerr << "run failed (ruu=" << ruu << ")\n";
  return machine.now();
}

}  // namespace

int main() {
  std::cout << "=== RUU / input-queue sizing: hardware cost vs ICM overhead ===\n"
            << "(every RSE input queue has one entry per RUU slot; growing the\n"
            << " window costs flip-flops linearly but hides blocking-CHECK latency)\n\n";

  workloads::KMeansParams params;
  params.patterns = 120;
  params.clusters = 8;
  params.iters = 2;
  const std::string plain = workloads::kmeans_source(params);
  const std::string checked = workloads::instrument_checks(plain);

  report::Table table({"RUU entries", "queue flip-flops", "MUX gates", "baseline cycles",
                       "FW+ICM cycles", "ICM overhead"});
  for (const u32 ruu : {8u, 16u, 32u, 64u}) {
    engine::HwCostConfig hw;
    hw.entries_per_queue = ruu;
    const engine::QueueCost cost = engine::input_interface_cost(hw);
    const Cycle base = run(plain, ruu, /*framework=*/false);
    const Cycle icm = run(checked, ruu, /*framework=*/true);
    const double overhead =
        (static_cast<double>(icm) - static_cast<double>(base)) / static_cast<double>(base);
    table.row({std::to_string(ruu), std::to_string(cost.flip_flops),
               std::to_string(cost.mux_gates), std::to_string(base), std::to_string(icm),
               report::fmt_pct(overhead)});
  }
  table.print();
  std::cout << "\n(The paper's 16-entry point costs 2560 flip-flops / 12,800 gates;\n"
            << " the sweep shows what each doubling buys in absorbed check latency.)\n";
  return 0;
}
