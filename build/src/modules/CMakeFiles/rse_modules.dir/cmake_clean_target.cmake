file(REMOVE_RECURSE
  "librse_modules.a"
)
