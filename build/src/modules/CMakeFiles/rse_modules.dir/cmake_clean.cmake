file(REMOVE_RECURSE
  "CMakeFiles/rse_modules.dir/ahbm/ahbm.cpp.o"
  "CMakeFiles/rse_modules.dir/ahbm/ahbm.cpp.o.d"
  "CMakeFiles/rse_modules.dir/cfc/cfc.cpp.o"
  "CMakeFiles/rse_modules.dir/cfc/cfc.cpp.o.d"
  "CMakeFiles/rse_modules.dir/ddt/ddt.cpp.o"
  "CMakeFiles/rse_modules.dir/ddt/ddt.cpp.o.d"
  "CMakeFiles/rse_modules.dir/icm/icm.cpp.o"
  "CMakeFiles/rse_modules.dir/icm/icm.cpp.o.d"
  "CMakeFiles/rse_modules.dir/mlr/mlr.cpp.o"
  "CMakeFiles/rse_modules.dir/mlr/mlr.cpp.o.d"
  "librse_modules.a"
  "librse_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rse_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
