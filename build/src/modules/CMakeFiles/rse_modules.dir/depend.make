# Empty dependencies file for rse_modules.
# This may be replaced when dependencies are built.
