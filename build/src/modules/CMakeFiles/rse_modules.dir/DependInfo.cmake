
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/modules/ahbm/ahbm.cpp" "src/modules/CMakeFiles/rse_modules.dir/ahbm/ahbm.cpp.o" "gcc" "src/modules/CMakeFiles/rse_modules.dir/ahbm/ahbm.cpp.o.d"
  "/root/repo/src/modules/cfc/cfc.cpp" "src/modules/CMakeFiles/rse_modules.dir/cfc/cfc.cpp.o" "gcc" "src/modules/CMakeFiles/rse_modules.dir/cfc/cfc.cpp.o.d"
  "/root/repo/src/modules/ddt/ddt.cpp" "src/modules/CMakeFiles/rse_modules.dir/ddt/ddt.cpp.o" "gcc" "src/modules/CMakeFiles/rse_modules.dir/ddt/ddt.cpp.o.d"
  "/root/repo/src/modules/icm/icm.cpp" "src/modules/CMakeFiles/rse_modules.dir/icm/icm.cpp.o" "gcc" "src/modules/CMakeFiles/rse_modules.dir/icm/icm.cpp.o.d"
  "/root/repo/src/modules/mlr/mlr.cpp" "src/modules/CMakeFiles/rse_modules.dir/mlr/mlr.cpp.o" "gcc" "src/modules/CMakeFiles/rse_modules.dir/mlr/mlr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rse/CMakeFiles/rse_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rse_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rse_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
