
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/instrument.cpp" "src/workloads/CMakeFiles/rse_workloads.dir/instrument.cpp.o" "gcc" "src/workloads/CMakeFiles/rse_workloads.dir/instrument.cpp.o.d"
  "/root/repo/src/workloads/kmeans.cpp" "src/workloads/CMakeFiles/rse_workloads.dir/kmeans.cpp.o" "gcc" "src/workloads/CMakeFiles/rse_workloads.dir/kmeans.cpp.o.d"
  "/root/repo/src/workloads/mlr_progs.cpp" "src/workloads/CMakeFiles/rse_workloads.dir/mlr_progs.cpp.o" "gcc" "src/workloads/CMakeFiles/rse_workloads.dir/mlr_progs.cpp.o.d"
  "/root/repo/src/workloads/server.cpp" "src/workloads/CMakeFiles/rse_workloads.dir/server.cpp.o" "gcc" "src/workloads/CMakeFiles/rse_workloads.dir/server.cpp.o.d"
  "/root/repo/src/workloads/vpr_place.cpp" "src/workloads/CMakeFiles/rse_workloads.dir/vpr_place.cpp.o" "gcc" "src/workloads/CMakeFiles/rse_workloads.dir/vpr_place.cpp.o.d"
  "/root/repo/src/workloads/vpr_route.cpp" "src/workloads/CMakeFiles/rse_workloads.dir/vpr_route.cpp.o" "gcc" "src/workloads/CMakeFiles/rse_workloads.dir/vpr_route.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/rse_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rse_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
