file(REMOVE_RECURSE
  "CMakeFiles/rse_workloads.dir/instrument.cpp.o"
  "CMakeFiles/rse_workloads.dir/instrument.cpp.o.d"
  "CMakeFiles/rse_workloads.dir/kmeans.cpp.o"
  "CMakeFiles/rse_workloads.dir/kmeans.cpp.o.d"
  "CMakeFiles/rse_workloads.dir/mlr_progs.cpp.o"
  "CMakeFiles/rse_workloads.dir/mlr_progs.cpp.o.d"
  "CMakeFiles/rse_workloads.dir/server.cpp.o"
  "CMakeFiles/rse_workloads.dir/server.cpp.o.d"
  "CMakeFiles/rse_workloads.dir/vpr_place.cpp.o"
  "CMakeFiles/rse_workloads.dir/vpr_place.cpp.o.d"
  "CMakeFiles/rse_workloads.dir/vpr_route.cpp.o"
  "CMakeFiles/rse_workloads.dir/vpr_route.cpp.o.d"
  "librse_workloads.a"
  "librse_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rse_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
