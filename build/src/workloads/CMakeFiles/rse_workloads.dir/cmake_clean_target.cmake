file(REMOVE_RECURSE
  "librse_workloads.a"
)
