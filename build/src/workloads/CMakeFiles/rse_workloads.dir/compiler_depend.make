# Empty compiler generated dependencies file for rse_workloads.
# This may be replaced when dependencies are built.
