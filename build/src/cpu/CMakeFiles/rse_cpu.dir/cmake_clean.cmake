file(REMOVE_RECURSE
  "CMakeFiles/rse_cpu.dir/core.cpp.o"
  "CMakeFiles/rse_cpu.dir/core.cpp.o.d"
  "librse_cpu.a"
  "librse_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rse_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
