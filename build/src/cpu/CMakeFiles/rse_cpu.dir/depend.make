# Empty dependencies file for rse_cpu.
# This may be replaced when dependencies are built.
