file(REMOVE_RECURSE
  "librse_cpu.a"
)
