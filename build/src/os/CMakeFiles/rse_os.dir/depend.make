# Empty dependencies file for rse_os.
# This may be replaced when dependencies are built.
