file(REMOVE_RECURSE
  "CMakeFiles/rse_os.dir/guest_os.cpp.o"
  "CMakeFiles/rse_os.dir/guest_os.cpp.o.d"
  "CMakeFiles/rse_os.dir/machine.cpp.o"
  "CMakeFiles/rse_os.dir/machine.cpp.o.d"
  "CMakeFiles/rse_os.dir/recovery.cpp.o"
  "CMakeFiles/rse_os.dir/recovery.cpp.o.d"
  "librse_os.a"
  "librse_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rse_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
