file(REMOVE_RECURSE
  "librse_os.a"
)
