# Empty dependencies file for rse_engine.
# This may be replaced when dependencies are built.
