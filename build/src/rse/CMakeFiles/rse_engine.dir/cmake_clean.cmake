file(REMOVE_RECURSE
  "CMakeFiles/rse_engine.dir/framework.cpp.o"
  "CMakeFiles/rse_engine.dir/framework.cpp.o.d"
  "librse_engine.a"
  "librse_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rse_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
