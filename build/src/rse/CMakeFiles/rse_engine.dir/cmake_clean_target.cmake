file(REMOVE_RECURSE
  "librse_engine.a"
)
