file(REMOVE_RECURSE
  "librse_isa.a"
)
