# Empty compiler generated dependencies file for rse_isa.
# This may be replaced when dependencies are built.
