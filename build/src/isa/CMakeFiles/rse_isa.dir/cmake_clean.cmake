file(REMOVE_RECURSE
  "CMakeFiles/rse_isa.dir/assembler.cpp.o"
  "CMakeFiles/rse_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/rse_isa.dir/instruction.cpp.o"
  "CMakeFiles/rse_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/rse_isa.dir/interpreter.cpp.o"
  "CMakeFiles/rse_isa.dir/interpreter.cpp.o.d"
  "librse_isa.a"
  "librse_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rse_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
