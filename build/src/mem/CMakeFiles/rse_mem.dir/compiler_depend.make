# Empty compiler generated dependencies file for rse_mem.
# This may be replaced when dependencies are built.
