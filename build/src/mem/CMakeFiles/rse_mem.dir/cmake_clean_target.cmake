file(REMOVE_RECURSE
  "librse_mem.a"
)
