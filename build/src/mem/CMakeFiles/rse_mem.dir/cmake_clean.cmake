file(REMOVE_RECURSE
  "CMakeFiles/rse_mem.dir/cache.cpp.o"
  "CMakeFiles/rse_mem.dir/cache.cpp.o.d"
  "CMakeFiles/rse_mem.dir/main_memory.cpp.o"
  "CMakeFiles/rse_mem.dir/main_memory.cpp.o.d"
  "librse_mem.a"
  "librse_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rse_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
