# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_hw_overhead_smoke "/root/repo/build/bench/bench_hw_overhead")
set_tests_properties(bench_hw_overhead_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig6_icm_timeline_smoke "/root/repo/build/bench/bench_fig6_icm_timeline")
set_tests_properties(bench_fig6_icm_timeline_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_ahbm_adaptive_smoke "/root/repo/build/bench/bench_ahbm_adaptive")
set_tests_properties(bench_ahbm_adaptive_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_selfcheck_smoke "/root/repo/build/bench/bench_selfcheck")
set_tests_properties(bench_selfcheck_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_table5_mlr_smoke "/root/repo/build/bench/bench_table5_mlr")
set_tests_properties(bench_table5_mlr_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_rerand_smoke "/root/repo/build/bench/bench_rerand")
set_tests_properties(bench_rerand_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
