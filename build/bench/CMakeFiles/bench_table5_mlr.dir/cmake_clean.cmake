file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_mlr.dir/bench_table5_mlr.cpp.o"
  "CMakeFiles/bench_table5_mlr.dir/bench_table5_mlr.cpp.o.d"
  "bench_table5_mlr"
  "bench_table5_mlr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_mlr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
