# Empty dependencies file for bench_table5_mlr.
# This may be replaced when dependencies are built.
