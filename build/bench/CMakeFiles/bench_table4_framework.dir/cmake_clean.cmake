file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_framework.dir/bench_table4_framework.cpp.o"
  "CMakeFiles/bench_table4_framework.dir/bench_table4_framework.cpp.o.d"
  "bench_table4_framework"
  "bench_table4_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
