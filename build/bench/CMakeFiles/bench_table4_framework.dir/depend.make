# Empty dependencies file for bench_table4_framework.
# This may be replaced when dependencies are built.
