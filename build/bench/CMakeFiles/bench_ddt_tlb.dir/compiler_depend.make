# Empty compiler generated dependencies file for bench_ddt_tlb.
# This may be replaced when dependencies are built.
