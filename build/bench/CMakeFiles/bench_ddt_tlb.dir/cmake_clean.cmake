file(REMOVE_RECURSE
  "CMakeFiles/bench_ddt_tlb.dir/bench_ddt_tlb.cpp.o"
  "CMakeFiles/bench_ddt_tlb.dir/bench_ddt_tlb.cpp.o.d"
  "bench_ddt_tlb"
  "bench_ddt_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ddt_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
