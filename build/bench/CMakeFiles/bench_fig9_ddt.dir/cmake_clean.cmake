file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_ddt.dir/bench_fig9_ddt.cpp.o"
  "CMakeFiles/bench_fig9_ddt.dir/bench_fig9_ddt.cpp.o.d"
  "bench_fig9_ddt"
  "bench_fig9_ddt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_ddt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
