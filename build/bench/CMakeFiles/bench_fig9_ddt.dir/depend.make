# Empty dependencies file for bench_fig9_ddt.
# This may be replaced when dependencies are built.
