# Empty dependencies file for bench_selfcheck.
# This may be replaced when dependencies are built.
