file(REMOVE_RECURSE
  "CMakeFiles/bench_selfcheck.dir/bench_selfcheck.cpp.o"
  "CMakeFiles/bench_selfcheck.dir/bench_selfcheck.cpp.o.d"
  "bench_selfcheck"
  "bench_selfcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selfcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
