# Empty compiler generated dependencies file for bench_rerand.
# This may be replaced when dependencies are built.
