file(REMOVE_RECURSE
  "CMakeFiles/bench_rerand.dir/bench_rerand.cpp.o"
  "CMakeFiles/bench_rerand.dir/bench_rerand.cpp.o.d"
  "bench_rerand"
  "bench_rerand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rerand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
