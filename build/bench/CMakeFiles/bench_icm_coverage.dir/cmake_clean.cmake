file(REMOVE_RECURSE
  "CMakeFiles/bench_icm_coverage.dir/bench_icm_coverage.cpp.o"
  "CMakeFiles/bench_icm_coverage.dir/bench_icm_coverage.cpp.o.d"
  "bench_icm_coverage"
  "bench_icm_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_icm_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
