# Empty compiler generated dependencies file for bench_icm_coverage.
# This may be replaced when dependencies are built.
