# Empty compiler generated dependencies file for bench_ahbm_adaptive.
# This may be replaced when dependencies are built.
