file(REMOVE_RECURSE
  "CMakeFiles/bench_ahbm_adaptive.dir/bench_ahbm_adaptive.cpp.o"
  "CMakeFiles/bench_ahbm_adaptive.dir/bench_ahbm_adaptive.cpp.o.d"
  "bench_ahbm_adaptive"
  "bench_ahbm_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ahbm_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
