file(REMOVE_RECURSE
  "CMakeFiles/os_test.dir/os/checkpoint_test.cpp.o"
  "CMakeFiles/os_test.dir/os/checkpoint_test.cpp.o.d"
  "CMakeFiles/os_test.dir/os/guest_os_test.cpp.o"
  "CMakeFiles/os_test.dir/os/guest_os_test.cpp.o.d"
  "CMakeFiles/os_test.dir/os/loader_test.cpp.o"
  "CMakeFiles/os_test.dir/os/loader_test.cpp.o.d"
  "CMakeFiles/os_test.dir/os/network_test.cpp.o"
  "CMakeFiles/os_test.dir/os/network_test.cpp.o.d"
  "CMakeFiles/os_test.dir/os/rerandomize_test.cpp.o"
  "CMakeFiles/os_test.dir/os/rerandomize_test.cpp.o.d"
  "CMakeFiles/os_test.dir/os/scheduler_test.cpp.o"
  "CMakeFiles/os_test.dir/os/scheduler_test.cpp.o.d"
  "CMakeFiles/os_test.dir/os/syscall_edge_test.cpp.o"
  "CMakeFiles/os_test.dir/os/syscall_edge_test.cpp.o.d"
  "os_test"
  "os_test.pdb"
  "os_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
