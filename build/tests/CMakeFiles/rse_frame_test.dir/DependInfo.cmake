
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rse/framework_test.cpp" "tests/CMakeFiles/rse_frame_test.dir/rse/framework_test.cpp.o" "gcc" "tests/CMakeFiles/rse_frame_test.dir/rse/framework_test.cpp.o.d"
  "/root/repo/tests/rse/hw_cost_test.cpp" "tests/CMakeFiles/rse_frame_test.dir/rse/hw_cost_test.cpp.o" "gcc" "tests/CMakeFiles/rse_frame_test.dir/rse/hw_cost_test.cpp.o.d"
  "/root/repo/tests/rse/ioq_test.cpp" "tests/CMakeFiles/rse_frame_test.dir/rse/ioq_test.cpp.o" "gcc" "tests/CMakeFiles/rse_frame_test.dir/rse/ioq_test.cpp.o.d"
  "/root/repo/tests/rse/mau_fairness_test.cpp" "tests/CMakeFiles/rse_frame_test.dir/rse/mau_fairness_test.cpp.o" "gcc" "tests/CMakeFiles/rse_frame_test.dir/rse/mau_fairness_test.cpp.o.d"
  "/root/repo/tests/rse/mau_test.cpp" "tests/CMakeFiles/rse_frame_test.dir/rse/mau_test.cpp.o" "gcc" "tests/CMakeFiles/rse_frame_test.dir/rse/mau_test.cpp.o.d"
  "/root/repo/tests/rse/pipeline_taps_test.cpp" "tests/CMakeFiles/rse_frame_test.dir/rse/pipeline_taps_test.cpp.o" "gcc" "tests/CMakeFiles/rse_frame_test.dir/rse/pipeline_taps_test.cpp.o.d"
  "/root/repo/tests/rse/selfcheck_test.cpp" "tests/CMakeFiles/rse_frame_test.dir/rse/selfcheck_test.cpp.o" "gcc" "tests/CMakeFiles/rse_frame_test.dir/rse/selfcheck_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/rse_os.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rse_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rse_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/modules/CMakeFiles/rse_modules.dir/DependInfo.cmake"
  "/root/repo/build/src/rse/CMakeFiles/rse_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rse_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rse_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
