file(REMOVE_RECURSE
  "CMakeFiles/rse_frame_test.dir/rse/framework_test.cpp.o"
  "CMakeFiles/rse_frame_test.dir/rse/framework_test.cpp.o.d"
  "CMakeFiles/rse_frame_test.dir/rse/hw_cost_test.cpp.o"
  "CMakeFiles/rse_frame_test.dir/rse/hw_cost_test.cpp.o.d"
  "CMakeFiles/rse_frame_test.dir/rse/ioq_test.cpp.o"
  "CMakeFiles/rse_frame_test.dir/rse/ioq_test.cpp.o.d"
  "CMakeFiles/rse_frame_test.dir/rse/mau_fairness_test.cpp.o"
  "CMakeFiles/rse_frame_test.dir/rse/mau_fairness_test.cpp.o.d"
  "CMakeFiles/rse_frame_test.dir/rse/mau_test.cpp.o"
  "CMakeFiles/rse_frame_test.dir/rse/mau_test.cpp.o.d"
  "CMakeFiles/rse_frame_test.dir/rse/pipeline_taps_test.cpp.o"
  "CMakeFiles/rse_frame_test.dir/rse/pipeline_taps_test.cpp.o.d"
  "CMakeFiles/rse_frame_test.dir/rse/selfcheck_test.cpp.o"
  "CMakeFiles/rse_frame_test.dir/rse/selfcheck_test.cpp.o.d"
  "rse_frame_test"
  "rse_frame_test.pdb"
  "rse_frame_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rse_frame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
