# Empty compiler generated dependencies file for rse_frame_test.
# This may be replaced when dependencies are built.
