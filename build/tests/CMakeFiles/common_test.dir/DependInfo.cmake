
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/bits_test.cpp" "tests/CMakeFiles/common_test.dir/common/bits_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/bits_test.cpp.o.d"
  "/root/repo/tests/common/report_test.cpp" "tests/CMakeFiles/common_test.dir/common/report_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/report_test.cpp.o.d"
  "/root/repo/tests/common/ring_buffer_test.cpp" "tests/CMakeFiles/common_test.dir/common/ring_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/ring_buffer_test.cpp.o.d"
  "/root/repo/tests/common/rng_test.cpp" "tests/CMakeFiles/common_test.dir/common/rng_test.cpp.o" "gcc" "tests/CMakeFiles/common_test.dir/common/rng_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/rse_os.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rse_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rse_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/modules/CMakeFiles/rse_modules.dir/DependInfo.cmake"
  "/root/repo/build/src/rse/CMakeFiles/rse_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rse_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rse_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
