file(REMOVE_RECURSE
  "CMakeFiles/modules_test.dir/modules/ahbm_test.cpp.o"
  "CMakeFiles/modules_test.dir/modules/ahbm_test.cpp.o.d"
  "CMakeFiles/modules_test.dir/modules/cfc_test.cpp.o"
  "CMakeFiles/modules_test.dir/modules/cfc_test.cpp.o.d"
  "CMakeFiles/modules_test.dir/modules/ddt_property_test.cpp.o"
  "CMakeFiles/modules_test.dir/modules/ddt_property_test.cpp.o.d"
  "CMakeFiles/modules_test.dir/modules/ddt_recovery_test.cpp.o"
  "CMakeFiles/modules_test.dir/modules/ddt_recovery_test.cpp.o.d"
  "CMakeFiles/modules_test.dir/modules/ddt_test.cpp.o"
  "CMakeFiles/modules_test.dir/modules/ddt_test.cpp.o.d"
  "CMakeFiles/modules_test.dir/modules/icm_test.cpp.o"
  "CMakeFiles/modules_test.dir/modules/icm_test.cpp.o.d"
  "CMakeFiles/modules_test.dir/modules/icm_unit_test.cpp.o"
  "CMakeFiles/modules_test.dir/modules/icm_unit_test.cpp.o.d"
  "CMakeFiles/modules_test.dir/modules/mlr_test.cpp.o"
  "CMakeFiles/modules_test.dir/modules/mlr_test.cpp.o.d"
  "modules_test"
  "modules_test.pdb"
  "modules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
