
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/modules/ahbm_test.cpp" "tests/CMakeFiles/modules_test.dir/modules/ahbm_test.cpp.o" "gcc" "tests/CMakeFiles/modules_test.dir/modules/ahbm_test.cpp.o.d"
  "/root/repo/tests/modules/cfc_test.cpp" "tests/CMakeFiles/modules_test.dir/modules/cfc_test.cpp.o" "gcc" "tests/CMakeFiles/modules_test.dir/modules/cfc_test.cpp.o.d"
  "/root/repo/tests/modules/ddt_property_test.cpp" "tests/CMakeFiles/modules_test.dir/modules/ddt_property_test.cpp.o" "gcc" "tests/CMakeFiles/modules_test.dir/modules/ddt_property_test.cpp.o.d"
  "/root/repo/tests/modules/ddt_recovery_test.cpp" "tests/CMakeFiles/modules_test.dir/modules/ddt_recovery_test.cpp.o" "gcc" "tests/CMakeFiles/modules_test.dir/modules/ddt_recovery_test.cpp.o.d"
  "/root/repo/tests/modules/ddt_test.cpp" "tests/CMakeFiles/modules_test.dir/modules/ddt_test.cpp.o" "gcc" "tests/CMakeFiles/modules_test.dir/modules/ddt_test.cpp.o.d"
  "/root/repo/tests/modules/icm_test.cpp" "tests/CMakeFiles/modules_test.dir/modules/icm_test.cpp.o" "gcc" "tests/CMakeFiles/modules_test.dir/modules/icm_test.cpp.o.d"
  "/root/repo/tests/modules/icm_unit_test.cpp" "tests/CMakeFiles/modules_test.dir/modules/icm_unit_test.cpp.o" "gcc" "tests/CMakeFiles/modules_test.dir/modules/icm_unit_test.cpp.o.d"
  "/root/repo/tests/modules/mlr_test.cpp" "tests/CMakeFiles/modules_test.dir/modules/mlr_test.cpp.o" "gcc" "tests/CMakeFiles/modules_test.dir/modules/mlr_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/rse_os.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rse_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rse_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/modules/CMakeFiles/rse_modules.dir/DependInfo.cmake"
  "/root/repo/build/src/rse/CMakeFiles/rse_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rse_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rse_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
