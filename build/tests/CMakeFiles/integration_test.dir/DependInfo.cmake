
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/attack_scenarios_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/attack_scenarios_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/attack_scenarios_test.cpp.o.d"
  "/root/repo/tests/integration/differential_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/differential_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/differential_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/fault_injection_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/fault_injection_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/fault_injection_test.cpp.o.d"
  "/root/repo/tests/integration/workload_params_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/workload_params_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/workload_params_test.cpp.o.d"
  "/root/repo/tests/integration/workloads_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/rse_os.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rse_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rse_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/modules/CMakeFiles/rse_modules.dir/DependInfo.cmake"
  "/root/repo/build/src/rse/CMakeFiles/rse_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rse_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rse_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
