file(REMOVE_RECURSE
  "CMakeFiles/rse_asm.dir/rse_asm.cpp.o"
  "CMakeFiles/rse_asm.dir/rse_asm.cpp.o.d"
  "rse_asm"
  "rse_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rse_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
