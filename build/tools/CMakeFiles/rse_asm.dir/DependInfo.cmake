
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/rse_asm.cpp" "tools/CMakeFiles/rse_asm.dir/rse_asm.cpp.o" "gcc" "tools/CMakeFiles/rse_asm.dir/rse_asm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/rse_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rse_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rse_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
