# Empty dependencies file for rse_asm.
# This may be replaced when dependencies are built.
