file(REMOVE_RECURSE
  "CMakeFiles/rse_run.dir/rse_run.cpp.o"
  "CMakeFiles/rse_run.dir/rse_run.cpp.o.d"
  "rse_run"
  "rse_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rse_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
