
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/rse_run.cpp" "tools/CMakeFiles/rse_run.dir/rse_run.cpp.o" "gcc" "tools/CMakeFiles/rse_run.dir/rse_run.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/rse_os.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rse_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rse_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/modules/CMakeFiles/rse_modules.dir/DependInfo.cmake"
  "/root/repo/build/src/rse/CMakeFiles/rse_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rse_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rse_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
