# Empty dependencies file for rse_run.
# This may be replaced when dependencies are built.
