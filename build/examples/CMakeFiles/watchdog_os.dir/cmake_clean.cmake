file(REMOVE_RECURSE
  "CMakeFiles/watchdog_os.dir/watchdog_os.cpp.o"
  "CMakeFiles/watchdog_os.dir/watchdog_os.cpp.o.d"
  "watchdog_os"
  "watchdog_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watchdog_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
