# Empty dependencies file for watchdog_os.
# This may be replaced when dependencies are built.
