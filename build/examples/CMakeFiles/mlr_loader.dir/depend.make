# Empty dependencies file for mlr_loader.
# This may be replaced when dependencies are built.
