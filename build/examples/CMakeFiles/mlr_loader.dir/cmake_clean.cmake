file(REMOVE_RECURSE
  "CMakeFiles/mlr_loader.dir/mlr_loader.cpp.o"
  "CMakeFiles/mlr_loader.dir/mlr_loader.cpp.o.d"
  "mlr_loader"
  "mlr_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlr_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
